#include "analysis/plan_props.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "catalog/table.h"
#include "expr/simplifier.h"
#include "plan/spool.h"

namespace fusiondb {

namespace {

bool SameClass(const Value& a, const Value& b) {
  return PhysicalTypeOf(a.type()) == PhysicalTypeOf(b.type());
}

/// Raises `d`'s lower bound to (v, strict) when that is tighter. Bounds of
/// a different physical class than the held one are ignored (a well-typed
/// plan never produces them on one column).
void TightenLo(ColumnDomain* d, const Value& v, bool strict) {
  if (v.is_null()) return;
  if (d->lo.has && !SameClass(d->lo.value, v)) return;
  if (!d->lo.has) {
    d->lo = {true, strict, v};
    return;
  }
  int c = v.Compare(d->lo.value);
  if (c > 0 || (c == 0 && strict && !d->lo.strict)) d->lo = {true, strict, v};
}

void TightenHi(ColumnDomain* d, const Value& v, bool strict) {
  if (v.is_null()) return;
  if (d->hi.has && !SameClass(d->hi.value, v)) return;
  if (!d->hi.has) {
    d->hi = {true, strict, v};
    return;
  }
  int c = v.Compare(d->hi.value);
  if (c < 0 || (c == 0 && strict && !d->hi.strict)) d->hi = {true, strict, v};
}

/// Narrows `dst` with everything `src` establishes (conjunction of facts).
void IntersectInto(ColumnDomain* dst, const ColumnDomain& src) {
  dst->nullable = dst->nullable && src.nullable;
  if (src.lo.has) TightenLo(dst, src.lo.value, src.lo.strict);
  if (src.hi.has) TightenHi(dst, src.hi.value, src.hi.strict);
}

/// Widens `acc` to cover `d` as well (disjunction of facts).
void HullInto(ColumnDomain* acc, const ColumnDomain& d) {
  acc->nullable = acc->nullable || d.nullable;
  if (!acc->lo.has || !d.lo.has || !SameClass(acc->lo.value, d.lo.value)) {
    acc->lo = {};
  } else {
    int c = d.lo.value.Compare(acc->lo.value);
    if (c < 0 || (c == 0 && !d.lo.strict)) acc->lo = d.lo;
  }
  if (!acc->hi.has || !d.hi.has || !SameClass(acc->hi.value, d.hi.value)) {
    acc->hi = {};
  } else {
    int c = d.hi.value.Compare(acc->hi.value);
    if (c > 0 || (c == 0 && !d.hi.strict)) acc->hi = d.hi;
  }
}

CompareOp FlipCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kEq;
    case CompareOp::kNe:
      return CompareOp::kNe;
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
  }
  return op;
}

/// Matches `col OP literal` with the column on either side; normalizes so
/// the column is on the left.
bool AsColLitCompare(const Expr& e, ColumnId* col, CompareOp* op, Value* lit) {
  if (e.kind() != ExprKind::kCompare) return false;
  const ExprPtr& l = e.child(0);
  const ExprPtr& r = e.child(1);
  if (l->kind() == ExprKind::kColumnRef && r->kind() == ExprKind::kLiteral) {
    *col = l->column_id();
    *op = e.compare_op();
    *lit = r->literal();
    return true;
  }
  if (l->kind() == ExprKind::kLiteral && r->kind() == ExprKind::kColumnRef) {
    *col = r->column_id();
    *op = FlipCompare(e.compare_op());
    *lit = l->literal();
    return true;
  }
  return false;
}

bool IsBoolColumnRef(const Expr& e) {
  return e.kind() == ExprKind::kColumnRef && e.type() == DataType::kBool;
}

}  // namespace

void TightenDomains(const ExprPtr& conjunct, DomainMap* domains) {
  if (conjunct == nullptr) return;
  const Expr& e = *conjunct;
  switch (e.kind()) {
    case ExprKind::kAnd:
      for (const ExprPtr& c : e.children()) TightenDomains(c, domains);
      return;
    case ExprKind::kCompare: {
      ColumnId col;
      CompareOp op;
      Value lit;
      if (AsColLitCompare(e, &col, &op, &lit)) {
        if (lit.is_null()) return;  // NULL comparison is never TRUE
        ColumnDomain& d = (*domains)[col];
        d.nullable = false;
        switch (op) {
          case CompareOp::kEq:
            TightenLo(&d, lit, false);
            TightenHi(&d, lit, false);
            break;
          case CompareOp::kLt:
            TightenHi(&d, lit, true);
            break;
          case CompareOp::kLe:
            TightenHi(&d, lit, false);
            break;
          case CompareOp::kGt:
            TightenLo(&d, lit, true);
            break;
          case CompareOp::kGe:
            TightenLo(&d, lit, false);
            break;
          case CompareOp::kNe:
            break;
        }
        return;
      }
      if (e.child(0)->kind() == ExprKind::kColumnRef &&
          e.child(1)->kind() == ExprKind::kColumnRef) {
        // A TRUE comparison needs both operands non-NULL; an equality also
        // confines both columns to the intersection of their intervals.
        ColumnDomain& a = (*domains)[e.child(0)->column_id()];
        a.nullable = false;
        ColumnDomain& b = (*domains)[e.child(1)->column_id()];
        b.nullable = false;
        if (e.compare_op() == CompareOp::kEq) {
          ColumnDomain merged = a;
          IntersectInto(&merged, b);
          a = merged;
          b = merged;
        }
      }
      return;
    }
    case ExprKind::kNot: {
      const Expr& inner = *e.child(0);
      if (inner.kind() == ExprKind::kIsNull &&
          inner.child(0)->kind() == ExprKind::kColumnRef) {
        (*domains)[inner.child(0)->column_id()].nullable = false;
      } else if (IsBoolColumnRef(inner)) {
        ColumnDomain& d = (*domains)[inner.column_id()];
        d.nullable = false;
        TightenLo(&d, Value::Bool(false), false);
        TightenHi(&d, Value::Bool(false), false);
      }
      return;
    }
    case ExprKind::kColumnRef:
      if (e.type() == DataType::kBool) {
        ColumnDomain& d = (*domains)[e.column_id()];
        d.nullable = false;
        TightenLo(&d, Value::Bool(true), false);
        TightenHi(&d, Value::Bool(true), false);
      }
      return;
    case ExprKind::kInList: {
      if (e.child(0)->kind() != ExprKind::kColumnRef) return;
      Value lo, hi;
      bool first = true;
      for (size_t i = 1; i < e.children().size(); ++i) {
        const Expr& item = *e.child(i);
        if (item.kind() != ExprKind::kLiteral || item.literal().is_null()) {
          return;
        }
        const Value& v = item.literal();
        if (first) {
          lo = hi = v;
          first = false;
          continue;
        }
        if (!SameClass(lo, v)) return;
        if (v.Compare(lo) < 0) lo = v;
        if (v.Compare(hi) > 0) hi = v;
      }
      if (first) return;  // empty IN list is never TRUE
      ColumnDomain& d = (*domains)[e.child(0)->column_id()];
      d.nullable = false;
      TightenLo(&d, lo, false);
      TightenHi(&d, hi, false);
      return;
    }
    case ExprKind::kOr: {
      // Single-column OR: the hull of what the branches establish.
      ColumnId common = kInvalidColumnId;
      for (const ExprPtr& branch : e.children()) {
        std::vector<ColumnId> cols;
        CollectColumns(branch, &cols);
        std::sort(cols.begin(), cols.end());
        cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
        if (cols.size() != 1) return;
        if (common == kInvalidColumnId) common = cols[0];
        if (cols[0] != common) return;
      }
      if (common == kInvalidColumnId) return;
      ColumnDomain hull;
      bool first = true;
      for (const ExprPtr& branch : e.children()) {
        DomainMap tmp;
        TightenDomains(branch, &tmp);
        auto it = tmp.find(common);
        if (it == tmp.end()) return;  // branch establishes nothing
        if (first) {
          hull = it->second;
          first = false;
        } else {
          HullInto(&hull, it->second);
        }
      }
      if (!first) IntersectInto(&(*domains)[common], hull);
      return;
    }
    case ExprKind::kLiteral:
    case ExprKind::kArith:
    case ExprKind::kIsNull:
    case ExprKind::kCase:
      return;
  }
}

namespace {

const ColumnDomain* FindDomain(const DomainMap& region, ColumnId col) {
  auto it = region.find(col);
  return it == region.end() ? nullptr : &it->second;
}

/// True when the facts in `region` alone force `e` to be TRUE.
bool RegionSatisfies(const Expr& e, const DomainMap& region) {
  switch (e.kind()) {
    case ExprKind::kLiteral:
      return e.IsLiteralBool(true);
    case ExprKind::kAnd:
      for (const ExprPtr& c : e.children()) {
        if (!RegionSatisfies(*c, region)) return false;
      }
      return true;
    case ExprKind::kOr:
      for (const ExprPtr& c : e.children()) {
        if (RegionSatisfies(*c, region)) return true;
      }
      return false;
    case ExprKind::kColumnRef: {
      if (e.type() != DataType::kBool) return false;
      const ColumnDomain* d = FindDomain(region, e.column_id());
      return d != nullptr && !d->nullable && d->IsSingleton() &&
             d->lo.value.type() == DataType::kBool && d->lo.value.bool_value();
    }
    case ExprKind::kNot: {
      const Expr& inner = *e.child(0);
      if (inner.kind() == ExprKind::kIsNull &&
          inner.child(0)->kind() == ExprKind::kColumnRef) {
        const ColumnDomain* d =
            FindDomain(region, inner.child(0)->column_id());
        return d != nullptr && !d->nullable;
      }
      if (IsBoolColumnRef(inner)) {
        const ColumnDomain* d = FindDomain(region, inner.column_id());
        return d != nullptr && !d->nullable && d->IsSingleton() &&
               d->lo.value.type() == DataType::kBool &&
               !d->lo.value.bool_value();
      }
      return false;
    }
    case ExprKind::kCompare: {
      ColumnId col;
      CompareOp op;
      Value lit;
      if (AsColLitCompare(e, &col, &op, &lit)) {
        if (lit.is_null()) return false;
        const ColumnDomain* d = FindDomain(region, col);
        if (d == nullptr || d->nullable) return false;
        switch (op) {
          case CompareOp::kEq:
            return d->IsSingleton() && SameClass(d->lo.value, lit) &&
                   d->lo.value.Compare(lit) == 0;
          case CompareOp::kLe:
            return d->hi.has && SameClass(d->hi.value, lit) &&
                   d->hi.value.Compare(lit) <= 0;
          case CompareOp::kLt: {
            if (!d->hi.has || !SameClass(d->hi.value, lit)) return false;
            int c = d->hi.value.Compare(lit);
            return c < 0 || (c == 0 && d->hi.strict);
          }
          case CompareOp::kGe:
            return d->lo.has && SameClass(d->lo.value, lit) &&
                   d->lo.value.Compare(lit) >= 0;
          case CompareOp::kGt: {
            if (!d->lo.has || !SameClass(d->lo.value, lit)) return false;
            int c = d->lo.value.Compare(lit);
            return c > 0 || (c == 0 && d->lo.strict);
          }
          case CompareOp::kNe: {
            if (d->hi.has && SameClass(d->hi.value, lit)) {
              int c = d->hi.value.Compare(lit);
              if (c < 0 || (c == 0 && d->hi.strict)) return true;
            }
            if (d->lo.has && SameClass(d->lo.value, lit)) {
              int c = d->lo.value.Compare(lit);
              if (c > 0 || (c == 0 && d->lo.strict)) return true;
            }
            return false;
          }
        }
        return false;
      }
      if (e.compare_op() == CompareOp::kEq &&
          e.child(0)->kind() == ExprKind::kColumnRef &&
          e.child(1)->kind() == ExprKind::kColumnRef) {
        const ColumnDomain* a = FindDomain(region, e.child(0)->column_id());
        const ColumnDomain* b = FindDomain(region, e.child(1)->column_id());
        return a != nullptr && b != nullptr && !a->nullable && !b->nullable &&
               a->IsSingleton() && b->IsSingleton() &&
               SameClass(a->lo.value, b->lo.value) &&
               a->lo.value.Compare(b->lo.value) == 0;
      }
      return false;
    }
    case ExprKind::kInList: {
      if (e.child(0)->kind() != ExprKind::kColumnRef) return false;
      const ColumnDomain* d = FindDomain(region, e.child(0)->column_id());
      if (d == nullptr || d->nullable || !d->IsSingleton()) return false;
      for (size_t i = 1; i < e.children().size(); ++i) {
        const Expr& item = *e.child(i);
        if (item.kind() != ExprKind::kLiteral || item.literal().is_null()) {
          continue;
        }
        if (SameClass(d->lo.value, item.literal()) &&
            d->lo.value.Compare(item.literal()) == 0) {
          return true;
        }
      }
      return false;
    }
    case ExprKind::kArith:
    case ExprKind::kIsNull:
    case ExprKind::kCase:
      return false;
  }
  return false;
}

}  // namespace

bool Implies(const ExprPtr& premise, const ExprPtr& conclusion,
             const DomainMap* ambient) {
  if (conclusion == nullptr || IsTrueLiteral(conclusion)) return true;
  if (premise != nullptr && IsContradiction(premise)) return true;
  DomainMap region = ambient != nullptr ? *ambient : DomainMap{};
  std::unordered_set<std::string> premise_fps;
  if (premise != nullptr && !IsTrueLiteral(premise)) {
    std::vector<ExprPtr> pconj;
    SplitConjuncts(premise, &pconj);
    for (const ExprPtr& c : pconj) {
      TightenDomains(c, &region);
      premise_fps.insert(ExprFingerprint(c));
    }
  }
  std::vector<ExprPtr> cconj;
  SplitConjuncts(conclusion, &cconj);
  for (const ExprPtr& c : cconj) {
    if (IsTrueLiteral(c)) continue;
    if (premise_fps.count(ExprFingerprint(c)) > 0) continue;
    if (!RegionSatisfies(*c, region)) return false;
  }
  return true;
}

namespace {

/// An atom over at most one column whose truth over [min,max] of that
/// column is decidable. `*col` receives the referenced column
/// (kInvalidColumnId for constants).
bool MonotoneAtom(const Expr& e, ColumnId* col) {
  switch (e.kind()) {
    case ExprKind::kLiteral:
      *col = kInvalidColumnId;
      return e.type() == DataType::kBool;
    case ExprKind::kColumnRef:
      *col = e.column_id();
      return e.type() == DataType::kBool;
    case ExprKind::kIsNull:
      if (e.child(0)->kind() != ExprKind::kColumnRef) return false;
      *col = e.child(0)->column_id();
      return true;
    case ExprKind::kNot:
      return MonotoneAtom(*e.child(0), col);
    case ExprKind::kCompare: {
      ColumnId c;
      CompareOp op;
      Value lit;
      if (!AsColLitCompare(e, &c, &op, &lit)) return false;
      *col = c;
      return true;
    }
    case ExprKind::kInList: {
      if (e.child(0)->kind() != ExprKind::kColumnRef) return false;
      for (size_t i = 1; i < e.children().size(); ++i) {
        if (e.child(i)->kind() != ExprKind::kLiteral) return false;
      }
      *col = e.child(0)->column_id();
      return true;
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      ColumnId common = kInvalidColumnId;
      for (const ExprPtr& child : e.children()) {
        ColumnId c = kInvalidColumnId;
        if (!MonotoneAtom(*child, &c)) return false;
        if (c == kInvalidColumnId) continue;
        if (common == kInvalidColumnId) common = c;
        if (c != common) return false;
      }
      *col = common;
      return true;
    }
    case ExprKind::kArith:
    case ExprKind::kCase:
      return false;
  }
  return false;
}

}  // namespace

bool IsMonotone(const ExprPtr& filter) {
  if (filter == nullptr) return true;
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(filter, &conjuncts);
  for (const ExprPtr& c : conjuncts) {
    ColumnId col = kInvalidColumnId;
    if (!MonotoneAtom(*c, &col)) return false;
  }
  return true;
}

std::vector<ExprPtr> DropImpliedConjuncts(const std::vector<ExprPtr>& conjuncts,
                                          const DomainMap& ambient) {
  std::vector<ExprPtr> kept;
  kept.reserve(conjuncts.size());
  for (const ExprPtr& c : conjuncts) {
    if (c != nullptr && !RegionSatisfies(*c, ambient)) kept.push_back(c);
  }
  return kept;
}

// ---------------------------------------------------------------------------
// PlanProps
// ---------------------------------------------------------------------------

bool PlanProps::HasKey(const std::vector<ColumnId>& cols) const {
  std::unordered_set<ColumnId> closure(cols.begin(), cols.end());
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto& [det, dep] : fds) {
      if (closure.count(dep) > 0) continue;
      bool covered = true;
      for (ColumnId d : det) {
        if (closure.count(d) == 0) {
          covered = false;
          break;
        }
      }
      if (covered) {
        closure.insert(dep);
        grew = true;
      }
    }
  }
  for (const std::vector<ColumnId>& key : keys) {
    bool subset = true;
    for (ColumnId c : key) {
      if (closure.count(c) == 0) {
        subset = false;
        break;
      }
    }
    if (subset) return true;
  }
  return false;
}

void PlanProps::AddKey(std::vector<ColumnId> key) {
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());
  auto is_subset = [](const std::vector<ColumnId>& a,
                      const std::vector<ColumnId>& b) {
    return std::includes(b.begin(), b.end(), a.begin(), a.end());
  };
  for (const std::vector<ColumnId>& held : keys) {
    if (is_subset(held, key)) return;  // a held key already covers this
  }
  keys.erase(std::remove_if(keys.begin(), keys.end(),
                            [&](const std::vector<ColumnId>& held) {
                              return is_subset(key, held);
                            }),
             keys.end());
  if (keys.size() >= 4) return;  // cap: keep derivation linear
  keys.push_back(std::move(key));
}

// ---------------------------------------------------------------------------
// Per-operator derivation
// ---------------------------------------------------------------------------

namespace {

int64_t MulRows(int64_t a, int64_t b) {
  if (a < 0 || b < 0) return -1;
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<int64_t>::max() / b) return -1;
  return a * b;
}

int64_t AddRows(int64_t a, int64_t b) {
  if (a < 0 || b < 0) return -1;
  if (a > std::numeric_limits<int64_t>::max() - b) return -1;
  return a + b;
}

/// Adds the "at most one row" key when the row bound proves it.
void NormalizeSingleRow(PlanProps* p) {
  if (p->rows.max >= 0 && p->rows.max <= 1) p->AddKey({});
}

PlanProps DeriveScan(const ScanOp& scan) {
  PlanProps p;
  const Table& table = *scan.table();
  int64_t n = table.num_rows();
  bool pruned =
      scan.pruning_filter() != nullptr && !IsTrueLiteral(scan.pruning_filter());
  p.rows = {pruned ? 0 : n, n};
  const std::vector<int>& pk = table.primary_key();
  if (!pk.empty()) {
    std::vector<ColumnId> key;
    bool all_scanned = true;
    for (int table_col : pk) {
      int out_idx = -1;
      for (size_t i = 0; i < scan.table_columns().size(); ++i) {
        if (scan.table_columns()[i] == table_col) {
          out_idx = static_cast<int>(i);
          break;
        }
      }
      if (out_idx < 0) {
        all_scanned = false;
        break;
      }
      key.push_back(scan.schema().column(out_idx).id);
    }
    if (all_scanned) p.AddKey(std::move(key));
  }
  // The partition column's values are confined to the hull of the
  // per-partition [min_key, max_key] ranges (when they are all bounded).
  int pc = table.partition_column();
  if (pc >= 0 && !table.partitions().empty()) {
    int out_idx = -1;
    for (size_t i = 0; i < scan.table_columns().size(); ++i) {
      if (scan.table_columns()[i] == pc) {
        out_idx = static_cast<int>(i);
        break;
      }
    }
    if (out_idx >= 0) {
      int64_t lo = std::numeric_limits<int64_t>::max();
      int64_t hi = std::numeric_limits<int64_t>::min();
      bool bounded = true;
      for (const Partition& part : table.partitions()) {
        if (part.min_key == std::numeric_limits<int64_t>::min() ||
            part.max_key == std::numeric_limits<int64_t>::max()) {
          bounded = false;
          break;
        }
        lo = std::min(lo, part.min_key);
        hi = std::max(hi, part.max_key);
      }
      if (bounded) {
        const ColumnInfo& c = scan.schema().column(out_idx);
        Value lov = c.type == DataType::kDate ? Value::Date(lo)
                                              : Value::Int64(lo);
        Value hiv = c.type == DataType::kDate ? Value::Date(hi)
                                              : Value::Int64(hi);
        ColumnDomain& d = p.domains[c.id];
        d.lo = {true, false, lov};
        d.hi = {true, false, hiv};
      }
    }
  }
  NormalizeSingleRow(&p);
  return p;
}

PlanProps DeriveFilter(const FilterOp& filter, const PlanProps& child) {
  PlanProps p = child;
  p.rows.min = 0;
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(filter.predicate(), &conjuncts);
  for (const ExprPtr& c : conjuncts) TightenDomains(c, &p.domains);
  NormalizeSingleRow(&p);
  return p;
}

PlanProps DeriveProject(const ProjectOp& project, const PlanProps& child) {
  PlanProps p;
  p.rows = child.rows;
  // Source column -> an output column carrying it unchanged.
  std::unordered_map<ColumnId, ColumnId> image;
  for (const NamedExpr& e : project.exprs()) {
    if (e.expr->kind() == ExprKind::kColumnRef) {
      image.emplace(e.expr->column_id(), e.id);
    }
  }
  auto translate = [&image](const std::vector<ColumnId>& cols,
                            std::vector<ColumnId>* out) {
    for (ColumnId id : cols) {
      auto it = image.find(id);
      if (it == image.end()) return false;
      out->push_back(it->second);
    }
    return true;
  };
  for (const std::vector<ColumnId>& key : child.keys) {
    std::vector<ColumnId> mapped;
    if (translate(key, &mapped)) p.AddKey(std::move(mapped));
  }
  for (const auto& [det, dep] : child.fds) {
    std::vector<ColumnId> mapped_det;
    auto dep_it = image.find(dep);
    if (dep_it != image.end() && translate(det, &mapped_det)) {
      p.fds.emplace_back(std::move(mapped_det), dep_it->second);
    }
  }
  for (const NamedExpr& e : project.exprs()) {
    if (e.expr->kind() == ExprKind::kColumnRef) {
      auto it = child.domains.find(e.expr->column_id());
      if (it != child.domains.end()) p.domains[e.id] = it->second;
    } else if (e.expr->kind() == ExprKind::kLiteral) {
      ColumnDomain d;
      const Value& v = e.expr->literal();
      if (!v.is_null()) {
        d.nullable = false;
        d.lo = {true, false, v};
        d.hi = {true, false, v};
      }
      p.domains[e.id] = d;
    }
  }
  NormalizeSingleRow(&p);
  return p;
}

PlanProps DeriveAggregate(const AggregateOp& agg, const PlanProps& child) {
  PlanProps p;
  if (agg.IsScalar()) {
    p.rows = {1, 1};
    p.AddKey({});
  } else {
    p.rows = {child.rows.min >= 1 ? 1 : 0, child.rows.max};
    p.AddKey(agg.group_by());
    std::vector<ColumnId> det = agg.group_by();
    std::sort(det.begin(), det.end());
    det.erase(std::unique(det.begin(), det.end()), det.end());
    for (const AggregateItem& item : agg.aggregates()) {
      p.fds.emplace_back(det, item.id);
    }
  }
  for (ColumnId g : agg.group_by()) {
    auto it = child.domains.find(g);
    if (it != child.domains.end()) p.domains[g] = it->second;
  }
  for (const AggregateItem& item : agg.aggregates()) {
    ColumnDomain d;
    switch (item.func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount: {
        d.nullable = false;
        bool every_group_counts = item.func == AggFunc::kCountStar &&
                                  item.mask == nullptr && !agg.IsScalar();
        d.lo = {true, false, Value::Int64(every_group_counts ? 1 : 0)};
        if (child.rows.max >= 0) {
          d.hi = {true, false, Value::Int64(child.rows.max)};
        }
        break;
      }
      case AggFunc::kMin:
      case AggFunc::kMax: {
        // A non-NULL MIN/MAX is one of the input values.
        if (item.arg != nullptr &&
            item.arg->kind() == ExprKind::kColumnRef) {
          auto it = child.domains.find(item.arg->column_id());
          if (it != child.domains.end()) {
            d.lo = it->second.lo;
            d.hi = it->second.hi;
          }
        }
        break;
      }
      case AggFunc::kSum:
      case AggFunc::kAvg:
        break;
    }
    p.domains[item.id] = d;
  }
  NormalizeSingleRow(&p);
  return p;
}

PlanProps DeriveJoin(const JoinOp& join, const PlanProps& left,
                     const PlanProps& right) {
  PlanProps p;
  const Schema& ls = join.left()->schema();
  const Schema& rs = join.right()->schema();
  bool inner_like = join.join_type() == JoinType::kInner ||
                    join.join_type() == JoinType::kCross;

  // Equi-pair census: which side-columns the condition equates.
  std::vector<ExprPtr> conjuncts;
  if (join.condition() != nullptr) SplitConjuncts(join.condition(), &conjuncts);
  std::vector<ColumnId> left_equi;
  std::vector<ColumnId> right_equi;
  std::vector<std::pair<ColumnId, ColumnId>> pairs;  // (left, right)
  for (const ExprPtr& c : conjuncts) {
    if (c->kind() != ExprKind::kCompare ||
        c->compare_op() != CompareOp::kEq ||
        c->child(0)->kind() != ExprKind::kColumnRef ||
        c->child(1)->kind() != ExprKind::kColumnRef) {
      continue;
    }
    ColumnId a = c->child(0)->column_id();
    ColumnId b = c->child(1)->column_id();
    if (ls.Contains(a) && rs.Contains(b)) {
      pairs.emplace_back(a, b);
    } else if (ls.Contains(b) && rs.Contains(a)) {
      pairs.emplace_back(b, a);
    }
  }
  for (const auto& [a, b] : pairs) {
    left_equi.push_back(a);
    right_equi.push_back(b);
  }
  bool right_unique = !pairs.empty() && right.HasKey(right_equi);
  bool left_unique = !pairs.empty() && left.HasKey(left_equi);

  switch (join.join_type()) {
    case JoinType::kInner:
    case JoinType::kCross: {
      p.domains = left.domains;
      for (const auto& kv : right.domains) p.domains.insert(kv);
      for (const ExprPtr& c : conjuncts) TightenDomains(c, &p.domains);
      p.fds = left.fds;
      p.fds.insert(p.fds.end(), right.fds.begin(), right.fds.end());
      if (right_unique) {
        for (const std::vector<ColumnId>& k : left.keys) p.AddKey(k);
      }
      if (left_unique) {
        for (const std::vector<ColumnId>& k : right.keys) p.AddKey(k);
      }
      for (const std::vector<ColumnId>& lk : left.keys) {
        for (const std::vector<ColumnId>& rk : right.keys) {
          std::vector<ColumnId> merged = lk;
          merged.insert(merged.end(), rk.begin(), rk.end());
          p.AddKey(std::move(merged));
        }
      }
      int64_t max = MulRows(left.rows.max, right.rows.max);
      if (right_unique && left.rows.max >= 0 && (max < 0 || left.rows.max < max)) {
        max = left.rows.max;
      }
      if (left_unique && right.rows.max >= 0 && (max < 0 || right.rows.max < max)) {
        max = right.rows.max;
      }
      int64_t min =
          join.condition() == nullptr ? MulRows(left.rows.min, right.rows.min)
                                      : 0;
      p.rows = {min, max};
      break;
    }
    case JoinType::kLeft: {
      p.domains = left.domains;
      for (const auto& kv : right.domains) {
        ColumnDomain d = kv.second;
        d.nullable = true;  // null-padded on unmatched left rows
        p.domains.emplace(kv.first, d);
      }
      p.fds = left.fds;
      if (right_unique) {
        for (const std::vector<ColumnId>& k : left.keys) p.AddKey(k);
      }
      int64_t max;
      if (right_unique) {
        max = left.rows.max;
      } else if (right.rows.max < 0) {
        max = -1;
      } else {
        max = MulRows(left.rows.max, std::max<int64_t>(right.rows.max, 1));
      }
      p.rows = {left.rows.min, max};
      break;
    }
    case JoinType::kSemi: {
      p.domains = left.domains;
      for (const auto& [a, b] : pairs) {
        ColumnDomain& d = p.domains[a];
        d.nullable = false;  // a TRUE match needs the left value non-NULL
        auto it = right.domains.find(b);
        if (it != right.domains.end()) {
          if (it->second.lo.has) TightenLo(&d, it->second.lo.value, it->second.lo.strict);
          if (it->second.hi.has) TightenHi(&d, it->second.hi.value, it->second.hi.strict);
        }
      }
      for (const ExprPtr& c : conjuncts) {
        std::vector<ColumnId> cols;
        CollectColumns(c, &cols);
        bool left_only = true;
        for (ColumnId id : cols) {
          if (!ls.Contains(id)) {
            left_only = false;
            break;
          }
        }
        if (left_only) TightenDomains(c, &p.domains);
      }
      p.fds = left.fds;
      p.keys = left.keys;
      p.rows = {0, left.rows.max};
      break;
    }
  }
  NormalizeSingleRow(&p);
  return p;
}

PlanProps DeriveWindow(const WindowOp& window, const PlanProps& child) {
  PlanProps p = child;  // one output row per input row
  for (const WindowItem& item : window.items()) {
    ColumnDomain d;
    switch (item.func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount: {
        d.nullable = false;
        // Every row belongs to its own (non-empty) partition.
        int64_t lo = item.func == AggFunc::kCountStar && item.mask == nullptr
                         ? 1
                         : 0;
        d.lo = {true, false, Value::Int64(lo)};
        if (child.rows.max >= 0) {
          d.hi = {true, false, Value::Int64(child.rows.max)};
        }
        break;
      }
      case AggFunc::kMin:
      case AggFunc::kMax: {
        if (item.arg != nullptr &&
            item.arg->kind() == ExprKind::kColumnRef) {
          auto it = child.domains.find(item.arg->column_id());
          if (it != child.domains.end()) {
            d.lo = it->second.lo;
            d.hi = it->second.hi;
          }
        }
        break;
      }
      case AggFunc::kSum:
      case AggFunc::kAvg:
        break;
    }
    p.domains[item.id] = d;
  }
  return p;
}

PlanProps DeriveMarkDistinct(const MarkDistinctOp& mark,
                             const PlanProps& child) {
  PlanProps p = child;
  ColumnDomain d;
  d.nullable = false;
  d.lo = {true, false, Value::Bool(false)};
  d.hi = {true, false, Value::Bool(true)};
  p.domains[mark.marker()] = d;
  return p;
}

PlanProps DeriveUnionAll(const UnionAllOp& u,
                         const std::vector<const PlanProps*>& children) {
  PlanProps p;
  int64_t min = 0;
  int64_t max = 0;
  for (const PlanProps* c : children) {
    min = AddRows(min, c->rows.min);
    max = max < 0 ? -1 : AddRows(max, c->rows.max);
  }
  if (min < 0) min = 0;
  p.rows = {min, max};
  for (size_t o = 0; o < u.schema().num_columns(); ++o) {
    ColumnDomain hull;
    bool known = true;
    bool first = true;
    for (size_t c = 0; c < children.size(); ++c) {
      auto it = children[c]->domains.find(u.input_columns()[c][o]);
      if (it == children[c]->domains.end()) {
        known = false;
        break;
      }
      if (first) {
        hull = it->second;
        first = false;
      } else {
        HullInto(&hull, it->second);
      }
    }
    if (known && !first) p.domains[u.schema().column(o).id] = hull;
  }
  NormalizeSingleRow(&p);
  return p;
}

PlanProps DeriveValues(const ValuesOp& values) {
  PlanProps p;
  int64_t n = static_cast<int64_t>(values.rows().size());
  p.rows = {n, n};
  for (size_t col = 0; col < values.schema().num_columns(); ++col) {
    ColumnDomain d;
    d.nullable = false;
    bool first = true;
    bool bounded = true;
    for (const std::vector<Value>& row : values.rows()) {
      const Value& v = row[col];
      if (v.is_null()) {
        d.nullable = true;
        continue;
      }
      if (first) {
        d.lo = {true, false, v};
        d.hi = {true, false, v};
        first = false;
        continue;
      }
      if (!SameClass(d.lo.value, v)) {
        bounded = false;
        break;
      }
      if (v.Compare(d.lo.value) < 0) d.lo.value = v;
      if (v.Compare(d.hi.value) > 0) d.hi.value = v;
    }
    if (!bounded || first) {
      d.lo = {};
      d.hi = {};
    }
    if (n == 0) d.nullable = false;
    p.domains[values.schema().column(col).id] = d;
  }
  NormalizeSingleRow(&p);
  return p;
}

PlanProps DeriveLimit(const LimitOp& limit, const PlanProps& child) {
  PlanProps p = child;
  p.rows.min = std::min(child.rows.min, limit.limit());
  p.rows.max =
      child.rows.max < 0 ? limit.limit() : std::min(child.rows.max, limit.limit());
  NormalizeSingleRow(&p);
  return p;
}

PlanProps DeriveEnforceSingleRow(const PlanProps& child) {
  PlanProps p = child;
  p.rows = {1, 1};
  p.AddKey({});
  return p;
}

PlanProps DeriveApply(const ApplyOp& apply, const PlanProps& outer) {
  PlanProps p;
  p.rows = outer.rows;
  p.keys = outer.keys;
  p.fds = outer.fds;
  p.domains = outer.domains;
  // The appended scalar column stays at the lattice top: the subquery runs
  // under per-row correlation bindings, so its standalone-derived domain
  // does not transfer.
  (void)apply;
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// PropertyDerivation
// ---------------------------------------------------------------------------

const PlanProps* PropertyDerivation::Lookup(const LogicalOp* op) const {
  auto it = memo_.find(op);
  return it == memo_.end() ? nullptr : &it->second;
}

const PlanProps& PropertyDerivation::Derive(const PlanPtr& plan) {
  auto [slot, inserted] = memo_.emplace(plan.get(), PlanProps{});
  // Re-entry (memo hit, or a cyclic plan hitting its own placeholder —
  // the structural verifier rejects cycles; the placeholder's lattice top
  // keeps derivation terminating and sound regardless).
  if (!inserted) return slot->second;
  keepalive_.push_back(plan);

  std::vector<const PlanProps*> child_props;
  child_props.reserve(plan->children().size());
  for (const PlanPtr& child : plan->children()) {
    child_props.push_back(&Derive(child));
  }

  PlanProps p;
  const LogicalOp& op = *plan;
  switch (op.kind()) {
    case OpKind::kScan:
      p = DeriveScan(Cast<ScanOp>(op));
      break;
    case OpKind::kFilter:
      p = DeriveFilter(Cast<FilterOp>(op), *child_props[0]);
      break;
    case OpKind::kProject:
      p = DeriveProject(Cast<ProjectOp>(op), *child_props[0]);
      break;
    case OpKind::kJoin:
      p = DeriveJoin(Cast<JoinOp>(op), *child_props[0], *child_props[1]);
      break;
    case OpKind::kAggregate:
      p = DeriveAggregate(Cast<AggregateOp>(op), *child_props[0]);
      break;
    case OpKind::kWindow:
      p = DeriveWindow(Cast<WindowOp>(op), *child_props[0]);
      break;
    case OpKind::kMarkDistinct:
      p = DeriveMarkDistinct(Cast<MarkDistinctOp>(op), *child_props[0]);
      break;
    case OpKind::kUnionAll:
      p = DeriveUnionAll(Cast<UnionAllOp>(op), child_props);
      break;
    case OpKind::kValues:
      p = DeriveValues(Cast<ValuesOp>(op));
      break;
    case OpKind::kSort:
    case OpKind::kSpool:
      p = *child_props[0];
      break;
    case OpKind::kLimit:
      p = DeriveLimit(Cast<LimitOp>(op), *child_props[0]);
      break;
    case OpKind::kEnforceSingleRow:
      p = DeriveEnforceSingleRow(*child_props[0]);
      break;
    case OpKind::kApply:
      p = DeriveApply(Cast<ApplyOp>(op), *child_props[0]);
      break;
  }
  PlanProps& out = memo_[plan.get()];
  out = std::move(p);
  return out;
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

std::string PropsToString(const PlanProps& props) {
  std::string out = "rows=[";
  out += std::to_string(props.rows.min);
  out += ",";
  out += props.rows.max < 0 ? "*" : std::to_string(props.rows.max);
  out += "]";
  if (!props.keys.empty()) {
    out += " keys={";
    for (size_t i = 0; i < props.keys.size(); ++i) {
      if (i > 0) out += " ";
      out += "(";
      for (size_t j = 0; j < props.keys[i].size(); ++j) {
        if (j > 0) out += " ";
        out += "#" + std::to_string(props.keys[i][j]);
      }
      out += ")";
    }
    out += "}";
  }
  std::vector<ColumnId> ids;
  for (const auto& [id, d] : props.domains) {
    if (!d.nullable || d.lo.has || d.hi.has) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (ColumnId id : ids) {
    const ColumnDomain& d = props.domains.at(id);
    out += " #" + std::to_string(id) + ":";
    if (!d.nullable) out += "!null";
    if (d.lo.has || d.hi.has) {
      out += d.lo.strict ? "(" : "[";
      out += d.lo.has ? d.lo.value.ToString() : "*";
      out += ",";
      out += d.hi.has ? d.hi.value.ToString() : "*";
      out += d.hi.strict ? ")" : "]";
    }
  }
  return out;
}

}  // namespace fusiondb
