// Invariant-checking macros. FUSIONDB_CHECK aborts the process: it is for
// conditions that indicate a bug in FusionDB itself, never for user errors
// (those travel as Status).
#ifndef FUSIONDB_COMMON_CHECK_H_
#define FUSIONDB_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define FUSIONDB_CHECK(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "FUSIONDB_CHECK failed at %s:%d: %s (%s)\n",      \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#endif  // FUSIONDB_COMMON_CHECK_H_
