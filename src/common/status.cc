#include "common/status.h"

namespace fusiondb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotImplemented:
      return "not_implemented";
    case StatusCode::kTypeError:
      return "type_error";
    case StatusCode::kPlanError:
      return "plan_error";
    case StatusCode::kExecutionError:
      return "execution_error";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

}  // namespace fusiondb
