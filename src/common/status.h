// Status and Result<T>: exception-free error propagation in the style of
// Apache Arrow / Abseil. All fallible FusionDB APIs return one of these.
#ifndef FUSIONDB_COMMON_STATUS_H_
#define FUSIONDB_COMMON_STATUS_H_

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <variant>

namespace fusiondb {

/// Coarse classification of an error. FusionDB never throws; every fallible
/// operation reports failure through a Status (or Result<T>) carrying one of
/// these codes plus a human-readable message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotImplemented,    // feature intentionally unsupported
  kTypeError,         // expression/plan type mismatch
  kPlanError,         // malformed or unbound logical plan
  kExecutionError,    // runtime failure while evaluating a plan
  kInternal,          // invariant violation (a bug in FusionDB)
};

/// Returns the canonical lowercase name of a status code ("ok",
/// "invalid_argument", ...).
const char* StatusCodeName(StatusCode code);

/// An error indicator. A default-constructed Status is OK and carries no
/// allocation; error statuses hold a code and message.
class Status {
 public:
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(message)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->message;
  }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = StatusCodeName(code());
    out += ": ";
    out += message();
    return out;
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Shared so Status is cheap to copy; errors are immutable once created.
  std::shared_ptr<const State> state_;
};

/// Either a value of type T or an error Status. Modeled on arrow::Result.
template <typename T>
class Result {
 public:
  // Implicit conversions from both T and Status keep call sites terse:
  //   Result<int> F() { if (bad) return Status::...; return 42; }
  Result(T value) : value_(std::move(value)) {}             // NOLINT
  Result(Status status) : value_(std::move(status)) {}      // NOLINT

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  /// Precondition: ok(). Use ValueOrDie only after checking, or via the
  /// ASSIGN_OR_RETURN macro which checks for you.
  T& ValueOrDie() & { return std::get<T>(value_); }
  const T& ValueOrDie() const& { return std::get<T>(value_); }
  T&& ValueOrDie() && { return std::get<T>(std::move(value_)); }

  T& operator*() & { return ValueOrDie(); }
  const T& operator*() const& { return ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

 private:
  std::variant<T, Status> value_;
};

namespace internal {
// Builds "msg" from streamable parts for the CHECK macros.
template <typename... Args>
std::string StrCat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace internal

}  // namespace fusiondb

/// Propagates an error Status from an expression producing a Status.
#define FUSIONDB_RETURN_IF_ERROR(expr)                 \
  do {                                                 \
    ::fusiondb::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                         \
  } while (0)

#define FUSIONDB_CONCAT_IMPL(a, b) a##b
#define FUSIONDB_CONCAT(a, b) FUSIONDB_CONCAT_IMPL(a, b)

/// Evaluates a Result-producing expression; on error returns the Status,
/// otherwise moves the value into `lhs` (which may be a declaration).
#define FUSIONDB_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  FUSIONDB_ASSIGN_OR_RETURN_IMPL(                                      \
      FUSIONDB_CONCAT(_fusiondb_result_, __LINE__), lhs, rexpr)

#define FUSIONDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).ValueOrDie();

#endif  // FUSIONDB_COMMON_STATUS_H_
