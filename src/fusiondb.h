// FusionDB — computation reuse via query fusion.
//
// Umbrella header exposing the public API:
//   - analysis/ : plan verification + derived semantic properties
//   - catalog/  : in-memory partitioned tables
//   - plan/     : logical algebra + PlanBuilder + plan fingerprints
//   - expr/     : scalar expressions
//   - cost/     : cardinality estimates, stats feedback, fuse-vs-spool cost
//   - optimizer/: rule-based optimizer with the Section-IV fusion rules
//   - fusion/   : the Fuse(P1, P2) primitive itself
//   - exec/     : streaming executor + metrics + fan-out execution
//   - obs/      : profiling, optimizer trace, service metrics, query log
//   - server/   : concurrent query sessions with cross-query fusion
//   - sql/      : SQL front end (lexer, parser, binder, diagnostics)
//   - engine/   : the Engine facade tying all of the above together
//   - tpcds/    : benchmark substrate (schema, datagen, query suite)
#ifndef FUSIONDB_FUSIONDB_H_
#define FUSIONDB_FUSIONDB_H_

#include "analysis/plan_props.h"
#include "analysis/semantic_ledger.h"
#include "analysis/semantic_verifier.h"
#include "catalog/catalog.h"
#include "cost/cost_model.h"
#include "cost/stats_feedback.h"
#include "engine/engine.h"
#include "exec/executor.h"
#include "exec/fanout.h"
#include "expr/expr_builder.h"
#include "expr/simplifier.h"
#include "fusion/fuse.h"
#include "fusion/fuse_across.h"
#include "obs/metrics.h"
#include "obs/optimizer_trace.h"
#include "obs/profile.h"
#include "obs/query_log.h"
#include "optimizer/optimizer.h"
#include "plan/multi_plan.h"
#include "plan/plan_builder.h"
#include "plan/plan_fingerprint.h"
#include "plan/plan_printer.h"
#include "server/session_manager.h"
#include "sql/sql.h"
#include "tpcds/tpcds.h"

#endif  // FUSIONDB_FUSIONDB_H_
