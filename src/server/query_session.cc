#include "server/query_session.h"

namespace fusiondb {

QueryProfile MakeSessionProfile(const QuerySession& session, std::string query,
                                std::string config) {
  const Result<QueryResult>& result = session.result();
  FUSIONDB_CHECK(result.ok(), "MakeSessionProfile on a failed session");
  QueryProfile p = MakeQueryProfile(std::move(query), std::move(config),
                                    session.executed_plan(), *result);
  p.sharing = session.sharing();
  return p;
}

}  // namespace fusiondb
