// QuerySession: one in-flight query submitted to the SessionManager.
//
// A session is the routing endpoint of cross-query fusion: the submitter
// keeps the SessionPtr, the server batches the plan with other sessions'
// plans, and whichever execution ends up computing the query — shared
// fused plan or solo run — fulfills the session with its own rows. Wait()
// blocks until then.
//
// Sessions are created only by SessionManager (Submit / SubmitBatch); the
// submitted plan may come from any PlanContext — the server renumbers it
// into its own id space before comparing or fusing (plan/multi_plan.h).
#ifndef FUSIONDB_SERVER_QUERY_SESSION_H_
#define FUSIONDB_SERVER_QUERY_SESSION_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "exec/query_result.h"
#include "obs/operator_stats.h"
#include "obs/profile.h"
#include "plan/logical_plan.h"

namespace fusiondb {

class QuerySession {
 public:
  uint64_t id() const { return id_; }

  /// The plan as submitted (original ids). The session's result schema
  /// reproduces this plan's root schema exactly — ids, names, types —
  /// whether the query ran shared or solo.
  const PlanPtr& plan() const { return plan_; }

  /// Blocks until the batch containing this session has executed. The
  /// reference stays valid (and immutable) for the session's lifetime.
  const Result<QueryResult>& Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return done_; });
    return result_;
  }

  /// Non-blocking completion check.
  bool done() const {
    std::lock_guard<std::mutex> lock(mu_);
    return done_;
  }

  /// The result without blocking; callable only after done().
  const Result<QueryResult>& result() const {
    std::lock_guard<std::mutex> lock(mu_);
    FUSIONDB_CHECK(done_, "QuerySession::result() before completion");
    return result_;
  }

  // --- post-completion attribution (valid after Wait() returns) ----------

  /// True when the query was served from a shared fused execution.
  bool shared() const { return sharing_.consumers > 1; }

  /// The plan that actually executed (the fused group plan when shared,
  /// the session's own optimized plan when solo).
  const PlanPtr& executed_plan() const { return executed_plan_; }

  /// Shared-vs-isolated accounting for this session (obs/profile.h);
  /// `consumers == 1` for solo runs.
  const SessionSharing& sharing() const { return sharing_; }

  /// Latency breakdown (service telemetry, DESIGN.md §9.5): time spent in
  /// the admission queue before the session's group started executing, and
  /// the group execution's wall time. Valid after Wait() returns.
  int64_t queue_wait_us() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_wait_us_;
  }
  int64_t execute_us() const {
    std::lock_guard<std::mutex> lock(mu_);
    return execute_us_;
  }

  /// NowNanos() at submission (set at construction; immutable).
  int64_t submitted_ns() const { return submitted_ns_; }

 private:
  friend class SessionManager;

  QuerySession(uint64_t id, PlanPtr plan)
      : id_(id), plan_(std::move(plan)), submitted_ns_(NowNanos()) {}

  /// Called by the SessionManager before Fulfill (same thread), so the
  /// fields are published to waiters by Fulfill's lock/notify.
  void SetTiming(int64_t queue_wait_us, int64_t execute_us) {
    std::lock_guard<std::mutex> lock(mu_);
    queue_wait_us_ = queue_wait_us;
    execute_us_ = execute_us;
  }

  void Fulfill(Result<QueryResult> result, PlanPtr executed_plan,
               SessionSharing sharing) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      result_ = std::move(result);
      executed_plan_ = std::move(executed_plan);
      sharing_ = sharing;
      done_ = true;
    }
    cv_.notify_all();
  }

  const uint64_t id_;
  const PlanPtr plan_;
  const int64_t submitted_ns_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  Result<QueryResult> result_{Status::ExecutionError("session pending")};
  PlanPtr executed_plan_;
  SessionSharing sharing_;
  int64_t queue_wait_us_ = 0;
  int64_t execute_us_ = 0;
};

using SessionPtr = std::shared_ptr<QuerySession>;

/// Profile of a completed session: the executed plan with the shared
/// execution's stats, plus the sharing attribution block. `session` must
/// have completed successfully.
QueryProfile MakeSessionProfile(const QuerySession& session, std::string query,
                                std::string config);

}  // namespace fusiondb

#endif  // FUSIONDB_SERVER_QUERY_SESSION_H_
