#include "server/session_manager.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>

#include "analysis/semantic_verifier.h"
#include "cost/cost_model.h"
#include "fusion/fuse_across.h"
#include "plan/plan_fingerprint.h"

namespace fusiondb {

namespace {

/// Cheap structural pre-filter for candidate grouping, in the spirit of the
/// spool rule's Signature(): operator census plus the multiset of scanned
/// tables. Plans with different signatures cannot fuse, so the quadratic
/// TryAdd probing only runs within a signature bucket.
void CollectSignature(const PlanPtr& plan, std::map<OpKind, int>* census,
                      std::multiset<std::string>* tables) {
  (*census)[plan->kind()]++;
  if (plan->kind() == OpKind::kScan) {
    tables->insert(Cast<ScanOp>(*plan).table()->name());
  }
  for (const PlanPtr& c : plan->children()) {
    CollectSignature(c, census, tables);
  }
}

std::string PlanSignature(const PlanPtr& plan) {
  std::map<OpKind, int> census;
  std::multiset<std::string> tables;
  CollectSignature(plan, &census, &tables);
  std::string sig;
  for (const auto& [kind, count] : census) {
    sig += OpKindName(kind);
    sig += ':';
    sig += std::to_string(count);
    sig += ';';
  }
  for (const std::string& t : tables) {
    sig += t;
    sig += ',';
  }
  return sig;
}

}  // namespace

/// One candidate group: the incremental cross-plan fuser plus which
/// sessions it serves. `consumer` indexes into the fuser's consumer list.
struct SessionManager::Group {
  explicit Group(PlanContext* ctx) : fuser(ctx) {}

  CrossPlanFuser fuser;
  struct Member {
    SessionPtr session;
    ColumnMap renumber;  // session's original ids -> master-context ids
    size_t consumer;     // index into fuser consumers/members
  };
  std::vector<Member> members;
};

SessionManager::SessionManager(ServerOptions options)
    : options_(std::move(options)) {
  if (options_.window.max_batch < 1) options_.window.max_batch = 1;
  ctx_.set_trace(options_.trace);
  if (SemanticVerificationEnabled()) ctx_.set_semantics(&ledger_);
  if (MetricsRegistry* r = options_.metrics) {
    // The optimizer and (unless the caller wired its own sink) the batch
    // executor record into the same registry as the server counters.
    ctx_.set_metrics(r);
    if (options_.exec.metrics == nullptr) options_.exec.metrics = r;
    mids_.batches = r->Counter("fusiondb_server_batches_total");
    mids_.sessions = r->Counter("fusiondb_server_sessions_total");
    mids_.shared_groups = r->Counter("fusiondb_server_shared_groups_total");
    mids_.shared_sessions = r->Counter("fusiondb_server_shared_sessions_total");
    mids_.solo_sessions = r->Counter("fusiondb_server_solo_sessions_total");
    mids_.bytes_scanned = r->Counter("fusiondb_server_bytes_scanned_total");
    mids_.attributed_bytes =
        r->Counter("fusiondb_server_attributed_bytes_total");
    mids_.isolated_bytes = r->Counter("fusiondb_server_isolated_bytes_total");
    mids_.queue_depth = r->Gauge("fusiondb_server_queue_depth");
    mids_.batch_sessions = r->Histogram("fusiondb_server_batch_sessions");
    mids_.queue_wait_us = r->Histogram("fusiondb_server_queue_wait_us");
    mids_.execute_us = r->Histogram("fusiondb_server_execute_us");
    mids_.session_bytes =
        r->Histogram("fusiondb_server_session_bytes_scanned");
    mids_.decisions_share =
        r->Counter("fusiondb_cost_decisions_total{verdict=\"share\"}");
    mids_.decisions_solo =
        r->Counter("fusiondb_cost_decisions_total{verdict=\"solo\"}");
    mids_.slow_queries = r->Counter("fusiondb_server_slow_queries_total");
    mids_.telemetry_errors =
        r->Counter("fusiondb_server_telemetry_errors_total");
  }
}

SessionManager::~SessionManager() { Stop(); }

SessionPtr SessionManager::Submit(PlanPtr plan) {
  SessionPtr session;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    session = SessionPtr(
        new QuerySession(next_session_id_++, std::move(plan)));
    if (stop_) {
      session->Fulfill(
          Status::ExecutionError("session manager is stopped"), nullptr, {});
      return session;
    }
    EnsureCoordinatorLocked();
    pending_.push_back(session);
    if (options_.metrics != nullptr) {
      options_.metrics->GaugeSet(mids_.queue_depth,
                                 static_cast<int64_t>(pending_.size()));
    }
  }
  queue_cv_.notify_all();
  return session;
}

Result<QueryResult> SessionManager::ExecuteSync(PlanPtr plan) {
  SessionPtr session = Submit(std::move(plan));
  return session->Wait();
}

std::vector<SessionPtr> SessionManager::SubmitBatch(
    const std::vector<PlanPtr>& plans) {
  std::vector<SessionPtr> sessions;
  sessions.reserve(plans.size());
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (const PlanPtr& plan : plans) {
      sessions.push_back(SessionPtr(new QuerySession(next_session_id_++, plan)));
    }
  }
  for (size_t begin = 0; begin < sessions.size();
       begin += options_.window.max_batch) {
    size_t end = std::min(begin + options_.window.max_batch, sessions.size());
    ProcessBatch({sessions.begin() + static_cast<ptrdiff_t>(begin),
                  sessions.begin() + static_cast<ptrdiff_t>(end)});
  }
  return sessions;
}

void SessionManager::Stop() {
  std::thread coordinator;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
    coordinator = std::move(coordinator_);
  }
  queue_cv_.notify_all();
  if (coordinator.joinable()) coordinator.join();
}

void SessionManager::EnsureCoordinatorLocked() {
  if (coordinator_started_) return;
  coordinator_started_ = true;
  coordinator_ = std::thread([this] { CoordinatorLoop(); });
}

void SessionManager::CoordinatorLoop() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  while (true) {
    queue_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (stop_) return;
      continue;
    }
    // The admission window: the first arrival holds the batch open for
    // window_ms so concurrent queries can join; a full batch closes early,
    // and Stop() flushes immediately.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(options_.window.window_ms);
    queue_cv_.wait_until(lock, deadline, [this] {
      return stop_ || pending_.size() >= options_.window.max_batch;
    });
    size_t take = std::min(pending_.size(), options_.window.max_batch);
    std::vector<SessionPtr> batch(
        pending_.begin(), pending_.begin() + static_cast<ptrdiff_t>(take));
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<ptrdiff_t>(take));
    if (options_.metrics != nullptr) {
      options_.metrics->GaugeSet(mids_.queue_depth,
                                 static_cast<int64_t>(pending_.size()));
    }
    lock.unlock();
    ProcessBatch(batch);
    lock.lock();
  }
}

void SessionManager::ProcessBatch(const std::vector<SessionPtr>& sessions) {
  std::lock_guard<std::mutex> lock(batch_mu_);
  BatchReport report;
  report.sessions = sessions.size();
  if (MetricsRegistry* r = options_.metrics) {
    r->Add(mids_.batches, 1);
    r->Add(mids_.sessions, static_cast<int64_t>(sessions.size()));
    r->Record(mids_.batch_sessions, static_cast<int64_t>(sessions.size()));
  }

  // 1. Renumber every submitted plan into the master id space (so plans
  //    from different sessions can be fused) and optimize it under the
  //    configured mode. The optimizer preserves root output columns, so
  //    the renumber mapping keeps naming the optimized root.
  struct Prepared {
    SessionPtr session;
    PlanPtr plan;
    ColumnMap renumber;
  };
  std::vector<Prepared> prepared;
  prepared.reserve(sessions.size());
  Optimizer optimizer(options_.optimizer);
  PlanBundle bundle(&ctx_);
  for (const SessionPtr& session : sessions) {
    size_t idx = bundle.AddRoot(session->plan());
    Result<PlanPtr> optimized = optimizer.Optimize(bundle.root(idx).plan, &ctx_);
    if (!optimized.ok()) {
      session->Fulfill(optimized.status(), nullptr, {});
      continue;
    }
    prepared.push_back(
        {session, *optimized, bundle.root(idx).mapping});
  }

  // 2. Group: fold each plan into the first compatible group (same
  //    structural signature and Fuse succeeds), in arrival order. With
  //    sharing off — or a batch of one — every session forms its own group.
  std::vector<std::unique_ptr<Group>> groups;
  std::unordered_map<std::string, std::vector<Group*>> by_signature;
  bool sharing = options_.enable_sharing && prepared.size() > 1;
  for (Prepared& p : prepared) {
    Group* target = nullptr;
    size_t consumer = 0;
    if (sharing) {
      std::vector<Group*>& bucket = by_signature[PlanSignature(p.plan)];
      for (Group* g : bucket) {
        std::optional<size_t> idx = g->fuser.TryAdd(p.plan);
        if (idx.has_value()) {
          target = g;
          consumer = *idx;
          break;
        }
      }
      if (target == nullptr) {
        groups.push_back(std::make_unique<Group>(&ctx_));
        target = groups.back().get();
        consumer = *target->fuser.TryAdd(p.plan);
        bucket.push_back(target);
      }
    } else {
      groups.push_back(std::make_unique<Group>(&ctx_));
      target = groups.back().get();
      consumer = *target->fuser.TryAdd(p.plan);
    }
    target->members.push_back(
        {std::move(p.session), std::move(p.renumber), consumer});
  }

  // 2b. Semantic tier (FUSIONDB_VERIFY_SEMANTICS): before anything runs,
  //     re-prove the cross-plan folds — the implication obligations the
  //     fuser recorded, each shared group's fused plan, and every member's
  //     restoration (filter well-typed over the fused schema; every output
  //     column reachable through the consumer mapping). A failing group is
  //     fulfilled with the error instead of executing. Obligations are
  //     batch-global (the ledger does not attribute them to a group), so an
  //     obligation failure fails every shared group; solo groups recorded
  //     none and still run.
  if (ctx_.semantics() != nullptr) {
    SemanticVerifier verifier;
    Status obligations =
        verifier.CheckObligations(ctx_.semantics(), "cross-plan fold");
    for (std::unique_ptr<Group>& group : groups) {
      if (group->members.size() < 2) continue;
      Status st = obligations;
      if (st.ok()) st = verifier.Verify(group->fuser.plan(), "cross-plan fold");
      for (const Group::Member& m : group->members) {
        if (!st.ok()) break;
        const CrossConsumer& cc = group->fuser.consumer(m.consumer);
        st = verifier.VerifyConsumer(
            group->fuser.plan(), cc.filter, cc.mapping,
            group->fuser.members()[m.consumer]->schema(), "cross-plan fold");
      }
      if (!st.ok()) {
        for (const Group::Member& m : group->members) {
          m.session->Fulfill(st, nullptr, {});
        }
        group->members.clear();  // ExecuteGroup skips an emptied group
      }
    }
    if (ctx_.trace() != nullptr) {
      ctx_.trace()->RecordSemanticChecks(verifier.plans_verified(),
                                         verifier.props().nodes_derived(),
                                         verifier.obligations_checked());
    }
  }

  // 3. Price and execute each group, routing results to their sessions.
  for (std::unique_ptr<Group>& group : groups) {
    ExecuteGroup(group.get(), &report);
  }

  {
    std::lock_guard<std::mutex> report_lock(report_mu_);
    total_queries_ += static_cast<int64_t>(report.sessions);
    total_bytes_scanned_ += report.bytes_scanned;
    total_isolated_bytes_ += report.isolated_bytes_scanned;
    total_shared_sessions_ += static_cast<int64_t>(report.shared_sessions);
    last_report_ = std::move(report);
  }
}

void SessionManager::ExecuteGroup(Group* group, BatchReport* report) {
  size_t n = group->members.size();
  bool share = n >= 2;
  int32_t group_decisions = 0;
  int32_t group_spooled = 0;

  // Share-vs-solo pricing (cross-query CostDecision). The decision is
  // recorded even when use_cost_model forces sharing, so traces always
  // show what the economics were.
  if (share) {
    CardinalityEstimator estimator(options_.optimizer.feedback);
    CostModel model(&estimator);
    ShareDecision decision =
        model.DecideShare(group->fuser.plan(), group->fuser.members());
    if (!options_.use_cost_model) decision.share = true;
    share = decision.share;

    CostDecision record;
    record.anchor = OptimizerTrace::DescribeNode(*group->fuser.plan());
    record.fingerprint = PlanFingerprint(group->fuser.plan());
    record.consumers = static_cast<int>(n);
    record.reexec_cost_ns = decision.solo_cost;
    record.spool_cost_ns = decision.shared_cost;
    record.est_rows = decision.est_rows;
    record.est_bytes = decision.est_bytes;
    record.measured = decision.measured;
    record.spooled = share;
    record.cross_query = true;
    if (ctx_.trace() != nullptr) ctx_.trace()->RecordCostDecision(record);
    report->decisions.push_back(std::move(record));
    group_decisions = 1;
    group_spooled = share ? 1 : 0;
    if (MetricsRegistry* r = options_.metrics) {
      r->Add(share ? mids_.decisions_share : mids_.decisions_solo, 1);
    }
  }

  if (share) {
    // One shared execution: each session's consumer applies its
    // compensating filter over the fused output and reads its original
    // output columns through renumber-then-fusion mappings. Output ids and
    // names are the session's own, so the result schema is byte-identical
    // to an isolated run of the submitted plan.
    std::vector<FanOutConsumer> consumers;
    consumers.reserve(n);
    for (const Group::Member& m : group->members) {
      const CrossConsumer& cc = group->fuser.consumer(m.consumer);
      FanOutConsumer fc;
      fc.filter = cc.filter;
      const Schema& original = m.session->plan()->schema();
      fc.columns.reserve(original.num_columns());
      for (const ColumnInfo& c : original.columns()) {
        ColumnId fused = ApplyMap(cc.mapping, ApplyMap(m.renumber, c.id));
        fc.columns.push_back(
            {c.id, c.name, Expr::MakeColumnRef(fused, c.type)});
      }
      consumers.push_back(std::move(fc));
    }
    int64_t exec_start_ns = NowNanos();
    Result<FanOutResult> result =
        ExecuteFanOut(group->fuser.plan(), consumers, options_.exec);
    if (!result.ok()) {
      for (const Group::Member& m : group->members) {
        m.session->Fulfill(result.status(), nullptr, {});
      }
      return;
    }
    uint64_t fingerprint = PlanFingerprint(group->fuser.plan());
    int64_t bytes = result->metrics.bytes_scanned;
    int64_t execute_us = (NowNanos() - exec_start_ns) / 1000;
    report->shared_groups++;
    report->shared_sessions += n;
    report->bytes_scanned += bytes;
    report->isolated_bytes_scanned += static_cast<int64_t>(n) * bytes;
    if (MetricsRegistry* r = options_.metrics) {
      r->Add(mids_.shared_groups, 1);
      r->Add(mids_.bytes_scanned, bytes);
    }
    int64_t share_each = bytes / static_cast<int64_t>(n);
    for (size_t i = 0; i < n; ++i) {
      const Group::Member& m = group->members[i];
      SessionSharing sharing;
      sharing.session_id = m.session->id();
      sharing.group_fingerprint = fingerprint;
      sharing.consumers = static_cast<int>(n);
      sharing.shared_bytes_scanned = bytes;
      sharing.attributed_bytes_scanned =
          share_each + (i == 0 ? bytes % static_cast<int64_t>(n) : 0);
      sharing.isolated_bytes_scanned = static_cast<int64_t>(n) * bytes;
      report->attributions.push_back({sharing.session_id, fingerprint,
                                      sharing.consumers,
                                      sharing.attributed_bytes_scanned,
                                      result->results[i].num_rows()});
      int64_t rows = result->results[i].num_rows();
      int64_t queue_wait_us =
          (exec_start_ns - m.session->submitted_ns()) / 1000;
      m.session->SetTiming(queue_wait_us, execute_us);
      m.session->Fulfill(std::move(result->results[i]), group->fuser.plan(),
                         sharing);
      FinishSession(m.session, sharing, rows, queue_wait_us, execute_us,
                    group_decisions, group_spooled);
    }
    return;
  }

  // Solo: each member executes its own optimized plan — still through the
  // fan-out path (single passthrough consumer relabelled with the
  // session's original output ids), so shared and isolated execution
  // cannot diverge.
  for (const Group::Member& m : group->members) {
    const PlanPtr& plan = group->fuser.members()[m.consumer];
    FanOutConsumer fc;
    const Schema& original = m.session->plan()->schema();
    fc.columns.reserve(original.num_columns());
    for (const ColumnInfo& c : original.columns()) {
      ColumnId renumbered = ApplyMap(m.renumber, c.id);
      Result<DataType> type = plan->schema().TypeOf(renumbered);
      fc.columns.push_back(
          {c.id, c.name,
           Expr::MakeColumnRef(renumbered,
                               type.ok() ? *type : c.type)});
    }
    int64_t exec_start_ns = NowNanos();
    Result<FanOutResult> result =
        ExecuteFanOut(plan, {std::move(fc)}, options_.exec);
    if (!result.ok()) {
      m.session->Fulfill(result.status(), nullptr, {});
      continue;
    }
    int64_t bytes = result->metrics.bytes_scanned;
    int64_t execute_us = (NowNanos() - exec_start_ns) / 1000;
    report->solo_sessions++;
    report->bytes_scanned += bytes;
    report->isolated_bytes_scanned += bytes;
    if (MetricsRegistry* r = options_.metrics) {
      r->Add(mids_.bytes_scanned, bytes);
    }
    SessionSharing sharing;
    sharing.session_id = m.session->id();
    sharing.group_fingerprint = PlanFingerprint(plan);
    sharing.consumers = 1;
    sharing.shared_bytes_scanned = bytes;
    sharing.attributed_bytes_scanned = bytes;
    sharing.isolated_bytes_scanned = bytes;
    int64_t rows = result->results[0].num_rows();
    report->attributions.push_back({sharing.session_id,
                                    sharing.group_fingerprint, 1, bytes,
                                    rows});
    int64_t queue_wait_us = (exec_start_ns - m.session->submitted_ns()) / 1000;
    m.session->SetTiming(queue_wait_us, execute_us);
    m.session->Fulfill(std::move(result->results[0]), plan, sharing);
    FinishSession(m.session, sharing, rows, queue_wait_us, execute_us,
                  group_decisions, group_spooled);
  }
}

void SessionManager::FinishSession(const SessionPtr& session,
                                   const SessionSharing& sharing, int64_t rows,
                                   int64_t queue_wait_us, int64_t execute_us,
                                   int32_t decisions, int32_t spooled) {
  bool is_shared = sharing.consumers > 1;
  if (MetricsRegistry* r = options_.metrics) {
    r->Add(is_shared ? mids_.shared_sessions : mids_.solo_sessions, 1);
    r->Add(mids_.attributed_bytes, sharing.attributed_bytes_scanned);
    r->Add(mids_.isolated_bytes,
           sharing.isolated_bytes_scanned / sharing.consumers);
    r->Record(mids_.queue_wait_us, queue_wait_us);
    r->Record(mids_.execute_us, execute_us);
    r->Record(mids_.session_bytes, sharing.attributed_bytes_scanned);
  }
  QueryLog* log = options_.query_log;
  if (log == nullptr) return;

  QueryLogEvent event;
  event.session_id = session->id();
  event.mode = options_.mode_label;
  event.fingerprint = FingerprintToString(sharing.group_fingerprint);
  if (is_shared) event.group_fingerprint = event.fingerprint;
  event.shared = is_shared;
  event.consumers = sharing.consumers;
  event.queue_wait_us = queue_wait_us;
  event.execute_us = execute_us;
  event.bytes_scanned = sharing.attributed_bytes_scanned;
  event.shared_bytes_scanned = sharing.shared_bytes_scanned;
  event.isolated_bytes_scanned = sharing.isolated_bytes_scanned;
  event.rows_produced = rows;
  event.cost_decisions = decisions;
  event.cost_spooled = spooled;

  // Slow-query capture: anything whose end-to-end latency (queue + execute)
  // crosses the log's threshold gets its full profile written next to the
  // log. Telemetry failures never fail the query — count and report them.
  if (log->IsSlow(queue_wait_us + execute_us)) {
    event.slow = true;
    if (MetricsRegistry* r = options_.metrics) {
      r->Add(mids_.slow_queries, 1);
    }
    QueryProfile profile =
        MakeSessionProfile(*session, "", options_.mode_label);
    std::string path = log->SlowProfilePath(session->id());
    Status st = WriteProfileJson(profile, path);
    if (st.ok()) {
      event.slow_profile_path = path;
    } else {
      fprintf(stderr, "fusiondb: slow-query profile capture failed: %s\n",
              st.message().c_str());
      if (MetricsRegistry* r = options_.metrics) {
        r->Add(mids_.telemetry_errors, 1);
      }
    }
  }
  Status st = log->Append(event);
  if (!st.ok()) {
    fprintf(stderr, "fusiondb: query log append failed: %s\n",
            st.message().c_str());
    if (MetricsRegistry* r = options_.metrics) {
      r->Add(mids_.telemetry_errors, 1);
    }
  }
}

BatchReport SessionManager::last_batch_report() const {
  std::lock_guard<std::mutex> lock(report_mu_);
  return last_report_;
}

int64_t SessionManager::total_queries() const {
  std::lock_guard<std::mutex> lock(report_mu_);
  return total_queries_;
}

int64_t SessionManager::total_bytes_scanned() const {
  std::lock_guard<std::mutex> lock(report_mu_);
  return total_bytes_scanned_;
}

int64_t SessionManager::total_isolated_bytes_scanned() const {
  std::lock_guard<std::mutex> lock(report_mu_);
  return total_isolated_bytes_;
}

int64_t SessionManager::total_shared_sessions() const {
  std::lock_guard<std::mutex> lock(report_mu_);
  return total_shared_sessions_;
}

}  // namespace fusiondb
