// SessionManager: the concurrent query-session layer (DESIGN.md §12).
//
// Many clients submit plans; the manager collects concurrent arrivals over
// a small admission window, renumbers each plan into one shared id space,
// optimizes it, and groups structurally compatible plans by fingerprint
// signature. Each candidate group is folded through Fuse() across plans
// (fusion/fuse_across.h); the cost model prices share-vs-solo per group
// (cost_model.h ShareDecision, recorded as a cross-query CostDecision);
// groups that share execute exactly once through the fan-out executor
// (exec/fanout.h) with each session's rows restored by its compensating
// filter/projection and routed back to the owning session.
//
// All execution inside the server goes through ExecuteFanOut — including
// solo queries, which run as a single passthrough consumer — so shared and
// isolated paths cannot drift (tools/lint.sh bans ExecutePlan here).
//
// Two submission paths share the batch pipeline:
//   - Submit(): thread-safe, non-blocking; a background coordinator thread
//     closes the admission window and processes the batch.
//   - SubmitBatch(): synchronous and deterministic (no timing); used by
//     tests and benches to exercise exact batch compositions.
#ifndef FUSIONDB_SERVER_SESSION_MANAGER_H_
#define FUSIONDB_SERVER_SESSION_MANAGER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/semantic_ledger.h"
#include "exec/fanout.h"
#include "obs/metrics.h"
#include "obs/optimizer_trace.h"
#include "obs/query_log.h"
#include "optimizer/optimizer.h"
#include "plan/multi_plan.h"
#include "server/query_session.h"

namespace fusiondb {

/// How long the server holds an arriving query open for companions. A
/// larger window finds more sharing; a window (or batch cap) of 1 disables
/// sharing entirely — every query runs solo.
struct AdmissionWindow {
  int64_t window_ms = 2;  // wait this long after the first arrival
  size_t max_batch = 64;  // close early once this many queries arrived
};

struct ServerOptions {
  AdmissionWindow window;

  /// Per-session optimization configuration (mode baseline/fused/spooling/
  /// adaptive). Cross-query sharing is orthogonal to the within-plan mode:
  /// plans are optimized first, then fused across sessions.
  OptimizerOptions optimizer;

  /// Execution knobs for every batch execution (shared or solo).
  ExecOptions exec;

  /// Master switch for cross-query sharing. Off: every session runs solo
  /// (the isolated baseline the benches compare against).
  bool enable_sharing = true;

  /// Price share-vs-solo per candidate group. Off: every fusable group of
  /// two or more sessions shares unconditionally.
  bool use_cost_model = true;

  /// Optional trace (not owned; must outlive the manager). Receives the
  /// per-session optimizer phases and the cross-query CostDecisions.
  OptimizerTrace* trace = nullptr;

  /// Optional service metrics registry (not owned; must outlive the
  /// manager). When set, the manager records the `fusiondb_server_*`
  /// catalog (DESIGN.md §9.4) — queue-wait/execute latency histograms,
  /// batch occupancy, shared-vs-solo session counts, shared/attributed/
  /// isolated bytes — and wires the registry into the optimizer context
  /// and, unless `exec.metrics` is already set, into batch execution.
  MetricsRegistry* metrics = nullptr;

  /// Optional structured query log (not owned; must outlive the manager).
  /// One JSONL event per successfully completed session; sessions crossing
  /// the log's slow threshold auto-capture a full QueryProfile JSON next
  /// to the log file.
  QueryLog* query_log = nullptr;

  /// Label recorded as `mode` in query-log events ("baseline", "fused",
  /// "spooling", "adaptive"). Informational only.
  std::string mode_label;
};

/// One session's slice of a batch, for reports and JSON export.
struct SessionAttribution {
  uint64_t session_id = 0;
  uint64_t group_fingerprint = 0;  // executed plan's fingerprint
  int consumers = 1;               // group size (1 == solo)
  int64_t attributed_bytes_scanned = 0;
  int64_t rows = 0;
};

/// What one admission batch did: how many sessions shared, the physical
/// bytes the batch scanned, and the estimate of what the same queries
/// would have scanned in isolation (exact for identical-member groups;
/// for heterogeneous fused groups an upper bound, since an isolated member
/// may read a subset of the fused plan's column union).
struct BatchReport {
  size_t sessions = 0;
  size_t shared_groups = 0;    // fused groups of >= 2 that executed once
  size_t shared_sessions = 0;  // sessions served from those groups
  size_t solo_sessions = 0;
  int64_t bytes_scanned = 0;           // physical, whole batch
  int64_t isolated_bytes_scanned = 0;  // estimated isolated equivalent
  std::vector<CostDecision> decisions;  // cross_query == true
  std::vector<SessionAttribution> attributions;
};

class SessionManager {
 public:
  explicit SessionManager(ServerOptions options = ServerOptions());
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Enqueues `plan` (from any PlanContext) and returns its session. The
  /// coordinator thread starts lazily on first use. Thread-safe.
  SessionPtr Submit(PlanPtr plan);

  /// Submit + Wait: the one-call form for callers without concurrency.
  /// (Returns a copy; hold the SessionPtr from Submit to avoid it.)
  Result<QueryResult> ExecuteSync(PlanPtr plan);

  /// Processes `plans` synchronously on the calling thread as admission
  /// batches of at most `window.max_batch` (arrival order preserved), with
  /// no timing dependence. Returns the (already fulfilled) sessions.
  std::vector<SessionPtr> SubmitBatch(const std::vector<PlanPtr>& plans);

  /// Stops the coordinator after draining already-submitted queries.
  /// Idempotent; the destructor calls it.
  void Stop();

  /// Report of the most recently completed batch.
  BatchReport last_batch_report() const;

  /// Cumulative across all batches since construction.
  int64_t total_queries() const;
  int64_t total_bytes_scanned() const;
  int64_t total_isolated_bytes_scanned() const;
  int64_t total_shared_sessions() const;

  const ServerOptions& options() const { return options_; }

 private:
  struct Group;  // one cross-plan candidate group (session_manager.cc)

  /// Runs one admission batch end to end: renumber -> optimize -> group ->
  /// price -> execute (fan-out or solo) -> fulfill sessions. Serialized by
  /// batch_mu_; the master PlanContext is only touched here.
  void ProcessBatch(const std::vector<SessionPtr>& sessions);

  /// Executes one group (shared when it has >= 2 members and won pricing,
  /// otherwise each member solo) and fulfills its sessions.
  void ExecuteGroup(Group* group, BatchReport* report);

  /// Post-fulfillment telemetry for one successfully executed session:
  /// latency histograms and sharing counters into the registry, one query
  /// log event, and the slow-query profile capture. `decisions`/`spooled`
  /// describe the group's cost verdicts.
  void FinishSession(const SessionPtr& session, const SessionSharing& sharing,
                     int64_t rows, int64_t queue_wait_us, int64_t execute_us,
                     int32_t decisions, int32_t spooled);

  void CoordinatorLoop();
  void EnsureCoordinatorLocked();

  ServerOptions options_;

  /// Metric ids pre-resolved at construction so batch hot paths never take
  /// the registry's registration lock. All invalid when metrics == null
  /// (recording through an invalid id is a no-op).
  struct ServerMetricIds {
    MetricId batches, sessions, shared_groups, shared_sessions, solo_sessions;
    MetricId bytes_scanned, attributed_bytes, isolated_bytes;
    MetricId queue_depth;                 // gauge
    MetricId batch_sessions;              // histogram: admission occupancy
    MetricId queue_wait_us, execute_us;   // histograms, microseconds
    MetricId session_bytes;               // histogram: attributed bytes
    MetricId decisions_share, decisions_solo;
    MetricId slow_queries, telemetry_errors;
  };
  ServerMetricIds mids_;

  std::mutex batch_mu_;  // serializes ProcessBatch (and thus ctx_)
  PlanContext ctx_;      // master id space; guarded by batch_mu_
  // Semantic-obligation ledger, attached to ctx_ when the semantic tier is
  // on (FUSIONDB_VERIFY_SEMANTICS): the optimizer and the cross-plan fuser
  // record the facts their rewrites rely on, and ProcessBatch re-proves the
  // fold obligations before any group executes. Guarded by batch_mu_.
  SemanticLedger ledger_;
  uint64_t next_session_id_ = 1;  // guarded by queue_mu_

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::vector<SessionPtr> pending_;
  bool stop_ = false;
  bool coordinator_started_ = false;
  std::thread coordinator_;

  mutable std::mutex report_mu_;
  BatchReport last_report_;
  int64_t total_queries_ = 0;
  int64_t total_bytes_scanned_ = 0;
  int64_t total_isolated_bytes_ = 0;
  int64_t total_shared_sessions_ = 0;
};

}  // namespace fusiondb

#endif  // FUSIONDB_SERVER_SESSION_MANAGER_H_
