// Structured JSONL query log: one event per completed server session
// (DESIGN.md §9.5). This is the service-side record the paper's fleet-level
// analysis needs — fingerprints, sharing outcomes, and latency breakdowns
// accumulate across a query stream, where per-query profiles die with the
// process. A configurable slow-query threshold marks offending sessions so
// the server can auto-capture their full QueryProfile JSON next to the log.
#ifndef FUSIONDB_OBS_QUERY_LOG_H_
#define FUSIONDB_OBS_QUERY_LOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"

namespace fusiondb {

/// One completed session, flattened to scalars so every line is a small,
/// self-contained JSON object (schema_version stamped per line).
struct QueryLogEvent {
  int64_t session_id = 0;
  std::string query;              // caller-supplied label, may be empty
  std::string mode;               // optimizer mode label ("fused", ...)
  std::string fingerprint;        // hex fingerprint of the session's plan
  std::string group_fingerprint;  // hex group fingerprint when shared
  bool shared = false;            // served from a shared group execution
  int32_t consumers = 0;          // sessions in the group (1 when solo)
  int64_t queue_wait_us = 0;      // submit -> group execution start
  int64_t execute_us = 0;         // group execution wall time
  int64_t bytes_scanned = 0;      // attributed bytes (this session's share)
  int64_t shared_bytes_scanned = 0;    // the group's physical bytes
  int64_t isolated_bytes_scanned = 0;  // what a solo run would have paid
  int64_t rows_produced = 0;
  int32_t cost_decisions = 0;  // cost-model verdicts taken for this batch
  int32_t cost_spooled = 0;    // ... of which chose spool/share
  bool slow = false;           // crossed the slow-query threshold
  std::string slow_profile_path;  // where the auto-captured profile went
};

/// Append-only JSONL writer with a slow-query threshold. Append is
/// thread-safe (one mutex around the buffered write); events are flushed
/// per line so a crash loses at most the line being written.
class QueryLog {
 public:
  /// Opens `path` for appending. `slow_ms <= 0` disables slow-query
  /// capture. Fails with ExecutionError when the file cannot be opened.
  static Result<std::unique_ptr<QueryLog>> Open(const std::string& path,
                                                int64_t slow_ms = 0);

  ~QueryLog();
  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// Serializes `event` as one JSON line and appends it. Thread-safe.
  Status Append(const QueryLogEvent& event);

  /// Whether a session with this total latency crosses the slow threshold.
  bool IsSlow(int64_t total_us) const {
    return slow_ms_ > 0 && total_us >= slow_ms_ * 1000;
  }

  /// Where a slow session's auto-captured profile is written:
  /// `<path>.slow-<session_id>.json`.
  std::string SlowProfilePath(int64_t session_id) const;

  const std::string& path() const { return path_; }
  int64_t slow_ms() const { return slow_ms_; }

  /// Events appended so far (diagnostics / tests).
  int64_t events() const;

 private:
  QueryLog(std::string path, int64_t slow_ms, std::FILE* file);

  const std::string path_;
  const int64_t slow_ms_;
  mutable std::mutex mu_;  // guards file_ and events_
  std::FILE* file_;
  int64_t events_ = 0;
};

}  // namespace fusiondb

#endif  // FUSIONDB_OBS_QUERY_LOG_H_
