#include "obs/query_log.h"

#include <utility>

#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace fusiondb {

Result<std::unique_ptr<QueryLog>> QueryLog::Open(const std::string& path,
                                                 int64_t slow_ms) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return Status::ExecutionError("cannot open query log file: " + path);
  }
  return std::unique_ptr<QueryLog>(new QueryLog(path, slow_ms, f));
}

QueryLog::QueryLog(std::string path, int64_t slow_ms, std::FILE* file)
    : path_(std::move(path)), slow_ms_(slow_ms), file_(file) {}

QueryLog::~QueryLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
}

Status QueryLog::Append(const QueryLogEvent& event) {
  JsonWriter w;
  w.BeginObject();
  w.Field("schema_version", kTelemetrySchemaVersion);
  w.Field("session_id", event.session_id);
  if (!event.query.empty()) w.Field("query", event.query);
  if (!event.mode.empty()) w.Field("mode", event.mode);
  w.Field("fingerprint", event.fingerprint);
  if (!event.group_fingerprint.empty()) {
    w.Field("group_fingerprint", event.group_fingerprint);
  }
  w.Field("shared", event.shared);
  w.Field("consumers", static_cast<int64_t>(event.consumers));
  w.Field("queue_wait_us", event.queue_wait_us);
  w.Field("execute_us", event.execute_us);
  w.Field("bytes_scanned", event.bytes_scanned);
  w.Field("shared_bytes_scanned", event.shared_bytes_scanned);
  w.Field("isolated_bytes_scanned", event.isolated_bytes_scanned);
  w.Field("rows_produced", event.rows_produced);
  w.Field("cost_decisions", static_cast<int64_t>(event.cost_decisions));
  w.Field("cost_spooled", static_cast<int64_t>(event.cost_spooled));
  w.Field("slow", event.slow);
  if (!event.slow_profile_path.empty()) {
    w.Field("slow_profile_path", event.slow_profile_path);
  }
  w.EndObject();
  std::string line = w.TakeString();
  line.push_back('\n');

  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return Status::ExecutionError("query log already closed: " + path_);
  }
  size_t written = std::fwrite(line.data(), 1, line.size(), file_);
  if (written != line.size() || std::fflush(file_) != 0) {
    return Status::ExecutionError("failed writing query log to " + path_);
  }
  ++events_;
  return Status::OK();
}

std::string QueryLog::SlowProfilePath(int64_t session_id) const {
  return path_ + ".slow-" + std::to_string(session_id) + ".json";
}

int64_t QueryLog::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

}  // namespace fusiondb
