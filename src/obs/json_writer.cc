#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

namespace fusiondb {

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value attaches to its key; the key already handled the comma
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

void JsonWriter::AppendEscaped(std::string_view s) {
  for (char ch : s) {
    switch (ch) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out_ += buf;
        } else {
          out_ += ch;
        }
    }
  }
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  has_element_.push_back(false);
}

void JsonWriter::EndObject() {
  out_ += '}';
  has_element_.pop_back();
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  has_element_.push_back(false);
}

void JsonWriter::EndArray() {
  out_ += ']';
  has_element_.pop_back();
}

void JsonWriter::Key(std::string_view key) {
  MaybeComma();
  out_ += '"';
  AppendEscaped(key);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  MaybeComma();
  out_ += '"';
  AppendEscaped(value);
  out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out_ += buf;
}

void JsonWriter::Double(double value) {
  MaybeComma();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no NaN/Inf literals
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
}

void JsonWriter::Field(std::string_view key, std::string_view value) {
  Key(key);
  String(value);
}

void JsonWriter::Field(std::string_view key, const char* value) {
  Field(key, std::string_view(value));
}

void JsonWriter::Field(std::string_view key, int64_t value) {
  Key(key);
  Int(value);
}

void JsonWriter::Field(std::string_view key, double value) {
  Key(key);
  Double(value);
}

void JsonWriter::Field(std::string_view key, bool value) {
  Key(key);
  Bool(value);
}

}  // namespace fusiondb
