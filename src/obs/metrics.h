// Engine-wide metrics registry: named counters, gauges, and log-linear
// (HDR-style) histograms for service-level telemetry (DESIGN.md §9.4).
//
// The paper's headline claims are fleet-level — fusion pays off as
// aggregate bytes-scanned and latency reductions observed through service
// telemetry, not through one query's EXPLAIN ANALYZE. This registry is the
// engine's always-on service counterpart to the per-query profile: the
// server, executor, and optimizer record into it continuously, and a
// snapshot can be exported as JSON or Prometheus text at any time.
//
// Threading model: the same shard discipline as ExecMetrics
// (exec_context.h), generalized to long-lived multi-query recording. Every
// thread records into a private per-thread shard, so the hot path is a
// relaxed load+store on a cell only its owner writes — no locks, no
// contended atomics, TSan-clean, and totals are thread-count-invariant.
// Snapshot() sums relaxed loads across shards; because each cell has a
// single writer, the sum observes each shard at-or-before its current
// value (a consistent "recent past" total, the standard sharded-counter
// contract). Shard storage grows by installing fixed-size chunks through
// an acquire/release atomic pointer, so lazy metric registration never
// races a concurrent snapshot. Gauges (set-to-value semantics, possibly
// multi-writer) live at registry level as plain atomics.
//
// This header is intentionally link-free (header-only) so fusiondb_exec
// and fusiondb_plan can record without depending on the fusiondb_obs
// rendering library; JSON / Prometheus exposition lives in metrics.cc.
#ifndef FUSIONDB_OBS_METRICS_H_
#define FUSIONDB_OBS_METRICS_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace fusiondb {

/// Version stamped into every exported telemetry document — query profiles
/// (`WriteProfileJson`), query-log JSONL lines, and metrics snapshots — so
/// downstream tooling can evolve. Bump on any incompatible field change and
/// document the bump in DESIGN.md §9.
inline constexpr int64_t kTelemetrySchemaVersion = 1;

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Pre-resolved handle for one registered metric. Call sites resolve names
/// once (registration takes a mutex) and record through the id (lock-free).
struct MetricId {
  int32_t index = -1;
  bool valid() const { return index >= 0; }
};

// --- log-linear bucket scheme ----------------------------------------------
//
// Histograms bucket nonnegative int64 values HDR-style: exact buckets for
// 0..15, then 16 logarithmic sub-buckets per power of two. Relative error
// is bounded at ~6.25% (1/16) across the full int64 range with a fixed 960
// buckets, so one scheme serves microsecond latencies and terabyte byte
// counts alike.

inline constexpr int32_t kMetricSubBits = 4;            // 16 sub-buckets
inline constexpr int32_t kMetricSub = 1 << kMetricSubBits;
inline constexpr int32_t kMetricNumBuckets = 960;       // max index 959

/// Bucket index for a recorded value. Negative values clamp to bucket 0.
inline int32_t MetricBucketIndex(int64_t v) {
  if (v < kMetricSub) return v < 0 ? 0 : static_cast<int32_t>(v);
  int32_t msb = 63 - __builtin_clzll(static_cast<uint64_t>(v));
  int32_t sub = static_cast<int32_t>(
      (static_cast<uint64_t>(v) >> (msb - kMetricSubBits)) & (kMetricSub - 1));
  return (msb - kMetricSubBits + 1) * kMetricSub + sub;
}

/// Smallest value mapping to bucket `idx` (the inclusive lower bound).
inline int64_t MetricBucketLowerBound(int32_t idx) {
  if (idx < kMetricSub) return idx;
  int32_t octave = idx / kMetricSub;
  int32_t sub = idx % kMetricSub;
  return static_cast<int64_t>(kMetricSub + sub) << (octave - 1);
}

/// Largest value mapping to bucket `idx` (the inclusive upper bound).
inline int64_t MetricBucketUpperBound(int32_t idx) {
  if (idx >= kMetricNumBuckets - 1) return std::numeric_limits<int64_t>::max();
  return MetricBucketLowerBound(idx + 1) - 1;
}

// --- snapshot ---------------------------------------------------------------

/// Merged view of one histogram at snapshot time. `buckets` is dense from
/// index 0, trimmed after the last nonzero bucket. min/max are exact (kept
/// alongside the buckets), so quantile estimates clamp to observed values.
struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
  std::vector<int64_t> buckets;

  /// Value at quantile q in [0, 1], estimated from the bucket lower bounds
  /// and clamped to [min, max]. 0 when the histogram is empty.
  int64_t ValueAtQuantile(double q) const {
    if (count <= 0) return 0;
    int64_t target = static_cast<int64_t>(std::ceil(q * static_cast<double>(count)));
    target = std::max<int64_t>(1, std::min(target, count));
    int64_t cum = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
      cum += buckets[i];
      if (cum >= target) {
        int64_t v = MetricBucketLowerBound(static_cast<int32_t>(i));
        return std::max(min, std::min(v, max));
      }
    }
    return max;
  }
};

/// Point-in-time copy of every registered metric, ordered by registration.
/// Cheap value type: diffable, exportable (metrics.cc), and safe to hand
/// across threads.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Counter value by exact name; 0 when never registered.
  int64_t Counter(const std::string& name) const {
    for (const auto& c : counters) {
      if (c.first == name) return c.second;
    }
    return 0;
  }

  int64_t Gauge(const std::string& name) const {
    for (const auto& g : gauges) {
      if (g.first == name) return g.second;
    }
    return 0;
  }

  /// Histogram by exact name; nullptr when never registered.
  const HistogramSnapshot* Histogram(const std::string& name) const {
    for (const auto& h : histograms) {
      if (h.first == name) return &h.second;
    }
    return nullptr;
  }

  /// The change since `base`: counters and histogram counts/sums/buckets
  /// subtract (a metric absent from `base` diffs against zero); gauges keep
  /// this snapshot's value (a gauge is a level, not a rate). Histogram
  /// min/max keep this snapshot's epoch values — per-window extrema are not
  /// recoverable from two cumulative snapshots.
  MetricsSnapshot Diff(const MetricsSnapshot& base) const {
    MetricsSnapshot out;
    out.counters.reserve(counters.size());
    for (const auto& c : counters) {
      out.counters.emplace_back(c.first, c.second - base.Counter(c.first));
    }
    out.gauges = gauges;
    out.histograms.reserve(histograms.size());
    for (const auto& h : histograms) {
      HistogramSnapshot d = h.second;
      if (const HistogramSnapshot* b = base.Histogram(h.first)) {
        d.count -= b->count;
        d.sum -= b->sum;
        if (d.buckets.size() < b->buckets.size()) {
          d.buckets.resize(b->buckets.size(), 0);
        }
        for (size_t i = 0; i < b->buckets.size(); ++i) {
          d.buckets[i] -= b->buckets[i];
        }
      }
      out.histograms.emplace_back(h.first, std::move(d));
    }
    return out;
  }
};

// --- registry ---------------------------------------------------------------

class MetricsRegistry {
 public:
  MetricsRegistry() : serial_(next_serial_.fetch_add(1, std::memory_order_relaxed)) {}
  ~MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or re-resolves) a monotonically increasing counter.
  /// Registration is idempotent: the same name always yields the same id;
  /// re-registering under a different kind is a bug and aborts. Labels are
  /// embedded in the name Prometheus-style, e.g.
  /// `fusiondb_exec_table_bytes_scanned_total{table="store_sales"}`.
  MetricId Counter(const std::string& name) {
    return Register(name, MetricKind::kCounter);
  }

  /// Registers a gauge: a level that can move both ways (queue depth,
  /// in-flight sessions). Multi-writer safe.
  MetricId Gauge(const std::string& name) {
    return Register(name, MetricKind::kGauge);
  }

  /// Registers a log-linear histogram of nonnegative int64 observations
  /// (latencies in microseconds, byte counts, batch sizes).
  MetricId Histogram(const std::string& name) {
    return Register(name, MetricKind::kHistogram);
  }

  /// Adds `delta` to a counter. Lock-free: single relaxed load+store on a
  /// cell owned by the calling thread. Invalid ids are ignored so call
  /// sites can record unconditionally behind an optional registry.
  void Add(MetricId id, int64_t delta) {
    if (!id.valid()) return;
    Cell* c = LocalShard()->GetCell(id.index);
    c->count.store(c->count.load(std::memory_order_relaxed) + delta,
                   std::memory_order_relaxed);
  }

  /// Sets a gauge to an absolute value.
  void GaugeSet(MetricId id, int64_t value) {
    if (!id.valid()) return;
    GaugeSlot(id)->store(value, std::memory_order_relaxed);
  }

  /// Moves a gauge by `delta` (fetch_add: safe from any number of threads).
  void GaugeAdd(MetricId id, int64_t delta) {
    if (!id.valid()) return;
    GaugeSlot(id)->fetch_add(delta, std::memory_order_relaxed);
  }

  /// Records one observation into a histogram. Lock-free single-writer
  /// updates on the calling thread's shard; the bucket array is allocated
  /// lazily on first observation.
  void Record(MetricId id, int64_t value) {
    if (!id.valid()) return;
    Cell* c = LocalShard()->GetCell(id.index);
    c->count.store(c->count.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
    c->sum.store(c->sum.load(std::memory_order_relaxed) + value,
                 std::memory_order_relaxed);
    if (value < c->min.load(std::memory_order_relaxed)) {
      c->min.store(value, std::memory_order_relaxed);
    }
    if (value > c->max.load(std::memory_order_relaxed)) {
      c->max.store(value, std::memory_order_relaxed);
    }
    BucketArray* b = c->buckets.load(std::memory_order_relaxed);
    if (b == nullptr) {
      b = new BucketArray();
      // Release: a snapshot thread acquiring this pointer must see the
      // zero-initialized bucket array.
      c->buckets.store(b, std::memory_order_release);
    }
    std::atomic<int64_t>& slot = b->b[static_cast<size_t>(MetricBucketIndex(value))];
    slot.store(slot.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  }

  /// Merges every shard into a point-in-time snapshot. Safe to call
  /// concurrently with recording (recording never blocks); takes the
  /// registry mutex only against registration and shard creation.
  MetricsSnapshot Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot out;
    for (size_t i = 0; i < metrics_.size(); ++i) {
      const MetricInfo& info = metrics_[i];
      switch (info.kind) {
        case MetricKind::kCounter: {
          int64_t total = 0;
          for (const auto& shard : shards_) {
            if (const Cell* c = shard->PeekCell(static_cast<int32_t>(i))) {
              total += c->count.load(std::memory_order_relaxed);
            }
          }
          out.counters.emplace_back(info.name, total);
          break;
        }
        case MetricKind::kGauge: {
          out.gauges.emplace_back(
              info.name,
              gauges_[static_cast<size_t>(info.dense)].load(
                  std::memory_order_relaxed));
          break;
        }
        case MetricKind::kHistogram: {
          HistogramSnapshot h;
          h.min = std::numeric_limits<int64_t>::max();
          h.max = std::numeric_limits<int64_t>::min();
          for (const auto& shard : shards_) {
            const Cell* c = shard->PeekCell(static_cast<int32_t>(i));
            if (c == nullptr) continue;
            int64_t n = c->count.load(std::memory_order_relaxed);
            if (n == 0) continue;
            h.count += n;
            h.sum += c->sum.load(std::memory_order_relaxed);
            h.min = std::min(h.min, c->min.load(std::memory_order_relaxed));
            h.max = std::max(h.max, c->max.load(std::memory_order_relaxed));
            const BucketArray* b = c->buckets.load(std::memory_order_acquire);
            if (b == nullptr) continue;
            for (int32_t j = 0; j < kMetricNumBuckets; ++j) {
              int64_t bc = b->b[static_cast<size_t>(j)].load(
                  std::memory_order_relaxed);
              if (bc == 0) continue;
              if (h.buckets.size() <= static_cast<size_t>(j)) {
                h.buckets.resize(static_cast<size_t>(j) + 1, 0);
              }
              h.buckets[static_cast<size_t>(j)] += bc;
            }
          }
          if (h.count == 0) {
            h.min = 0;
            h.max = 0;
          }
          out.histograms.emplace_back(info.name, std::move(h));
          break;
        }
      }
    }
    return out;
  }

  /// Number of registered metrics (all kinds).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return metrics_.size();
  }

 private:
  // Shard storage: fixed-size chunks of cells installed through atomic
  // pointers, so the owner thread can extend its shard (lazy registration)
  // while a snapshot walks it. 64 chunks × 64 cells bounds a registry at
  // 4096 metrics — far above any realistic catalog, checked at Register.
  static constexpr int32_t kCellsPerChunk = 64;
  static constexpr int32_t kMaxChunks = 64;

  struct BucketArray {
    std::array<std::atomic<int64_t>, kMetricNumBuckets> b{};
  };

  // One metric's per-shard state. Counters use `count` only; histograms use
  // all fields. Single writer (the owning thread); snapshot readers load
  // relaxed (acquire for the bucket pointer).
  struct Cell {
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> min{std::numeric_limits<int64_t>::max()};
    std::atomic<int64_t> max{std::numeric_limits<int64_t>::min()};
    std::atomic<BucketArray*> buckets{nullptr};
  };

  struct Chunk {
    std::array<Cell, kCellsPerChunk> cells{};
  };

  struct Shard {
    std::array<std::atomic<Chunk*>, kMaxChunks> chunks{};

    ~Shard() {
      for (auto& slot : chunks) {
        Chunk* c = slot.load(std::memory_order_relaxed);
        if (c == nullptr) continue;
        for (Cell& cell : c->cells) {
          delete cell.buckets.load(std::memory_order_relaxed);
        }
        delete c;
      }
    }

    /// Owner-thread cell lookup, installing the chunk on first touch.
    /// Release store pairs with PeekCell's acquire load so a snapshot that
    /// sees the pointer sees zero-initialized cells.
    Cell* GetCell(int32_t index) {
      size_t ci = static_cast<size_t>(index) / kCellsPerChunk;
      Chunk* c = chunks[ci].load(std::memory_order_relaxed);
      if (c == nullptr) {
        c = new Chunk();
        chunks[ci].store(c, std::memory_order_release);
      }
      return &c->cells[static_cast<size_t>(index) % kCellsPerChunk];
    }

    /// Snapshot-thread cell lookup; nullptr when this shard never touched
    /// the chunk.
    const Cell* PeekCell(int32_t index) const {
      size_t ci = static_cast<size_t>(index) / kCellsPerChunk;
      const Chunk* c = chunks[ci].load(std::memory_order_acquire);
      if (c == nullptr) return nullptr;
      return &c->cells[static_cast<size_t>(index) % kCellsPerChunk];
    }
  };

  struct MetricInfo {
    std::string name;
    MetricKind kind;
    int32_t dense = -1;  // gauges: index into gauges_
  };

  MetricId Register(const std::string& name, MetricKind kind) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(name);
    if (it != index_.end()) {
      FUSIONDB_CHECK(metrics_[static_cast<size_t>(it->second)].kind == kind,
                     "metric re-registered under a different kind");
      return MetricId{it->second};
    }
    FUSIONDB_CHECK(
        metrics_.size() < static_cast<size_t>(kCellsPerChunk) * kMaxChunks,
        "metric registry full");
    int32_t id = static_cast<int32_t>(metrics_.size());
    MetricInfo info;
    info.name = name;
    info.kind = kind;
    if (kind == MetricKind::kGauge) {
      info.dense = static_cast<int32_t>(gauges_.size());
      gauges_.emplace_back(0);
    }
    metrics_.push_back(std::move(info));
    index_.emplace(name, id);
    return MetricId{id};
  }

  std::atomic<int64_t>* GaugeSlot(MetricId id) {
    std::lock_guard<std::mutex> lock(mu_);
    const MetricInfo& info = metrics_[static_cast<size_t>(id.index)];
    FUSIONDB_CHECK(info.kind == MetricKind::kGauge,
                   "gauge op on a non-gauge metric");
    // Deque storage: the pointer stays valid after the lock drops even if
    // another thread registers more gauges.
    return &gauges_[static_cast<size_t>(info.dense)];
  }

  /// The calling thread's shard, created on first use. Cached per thread
  /// keyed by the registry's globally unique serial, so a stale cache entry
  /// from a destroyed registry can never match a live one.
  Shard* LocalShard() {
    thread_local std::vector<std::pair<uint64_t, Shard*>> cache;
    for (const auto& e : cache) {
      if (e.first == serial_) return e.second;
    }
    Shard* s;
    {
      std::lock_guard<std::mutex> lock(mu_);
      shards_.push_back(std::make_unique<Shard>());
      s = shards_.back().get();
    }
    cache.emplace_back(serial_, s);
    return s;
  }

  static inline std::atomic<uint64_t> next_serial_{1};

  const uint64_t serial_;
  mutable std::mutex mu_;  // guards metrics_/index_/shards_/gauges_ growth
  std::vector<MetricInfo> metrics_;
  std::unordered_map<std::string, int32_t> index_;
  std::deque<std::unique_ptr<Shard>> shards_;
  std::deque<std::atomic<int64_t>> gauges_;
};

// --- exposition (implemented in metrics.cc, links fusiondb_obs) -------------

/// Renders a snapshot as a JSON document: schema_version, counters, gauges,
/// and histograms (count/sum/min/max, p50/p90/p99, nonzero buckets).
std::string MetricsToJson(const MetricsSnapshot& snapshot);

/// Renders a snapshot in Prometheus text exposition format: one `# TYPE`
/// line per family, `_bucket{le=...}` cumulative series plus `_sum` and
/// `_count` for histograms. Labels embedded in registered names merge with
/// the `le` label.
std::string MetricsToPrometheus(const MetricsSnapshot& snapshot);

/// Writes MetricsToJson(snapshot) to `path`; ExecutionError on any open or
/// write failure (callers must propagate this to a nonzero exit).
Status WriteMetricsJson(const MetricsSnapshot& snapshot,
                        const std::string& path);

}  // namespace fusiondb

#endif  // FUSIONDB_OBS_METRICS_H_
