#include "obs/optimizer_trace.h"

#include <cstdio>
#include <sstream>

#include "plan/plan_fingerprint.h"
#include "plan/spool.h"

namespace fusiondb {

namespace {

// Pathological fixpoint loops could otherwise grow the fusion log without
// bound; past the cap steps are counted but not stored.
constexpr size_t kMaxFusionSteps = 65536;

}  // namespace

void OptimizerTrace::BeginPhase(std::string name) { phase_ = std::move(name); }

void OptimizerTrace::RecordRuleAttempt(std::string_view rule, bool fired) {
  for (RulePhaseStats& s : rule_stats_) {
    if (s.phase == phase_ && s.rule == rule) {
      ++s.attempts;
      if (fired) ++s.fired;
      return;
    }
  }
  RulePhaseStats s;
  s.phase = phase_;
  s.rule = std::string(rule);
  s.attempts = 1;
  s.fired = fired ? 1 : 0;
  rule_stats_.push_back(std::move(s));
}

void OptimizerTrace::RecordRuleFiring(std::string_view rule,
                                      const LogicalOp& anchor, int ops_before,
                                      int ops_after) {
  RuleFiring f;
  f.phase = phase_;
  f.rule = std::string(rule);
  f.anchor = DescribeNode(anchor);
  f.ops_before = ops_before;
  f.ops_after = ops_after;
  firings_.push_back(std::move(f));
}

int OptimizerTrace::FusionEnter(const LogicalOp& p1, const LogicalOp& p2) {
  if (fusion_steps_.size() >= kMaxFusionSteps) {
    ++dropped_fusion_steps_;
    ++depth_;  // keep depths of surviving siblings consistent
    return -1;
  }
  FusionStep step;
  step.depth = depth_++;
  step.left = OpKindName(p1.kind());
  step.right = OpKindName(p2.kind());
  fusion_steps_.push_back(std::move(step));
  return static_cast<int>(fusion_steps_.size()) - 1;
}

void OptimizerTrace::AnnotateLastFiring(std::string props) {
  if (firings_.empty()) return;
  firings_.back().props = std::move(props);
}

void OptimizerTrace::RecordCostDecision(CostDecision decision) {
  cost_decisions_.push_back(std::move(decision));
}

void OptimizerTrace::RecordSemanticChecks(int64_t plans, int64_t nodes,
                                          int64_t obligations) {
  semantic_plans_verified_ += plans;
  semantic_nodes_derived_ += nodes;
  semantic_obligations_ += obligations;
}

void OptimizerTrace::FusionResolve(int step, bool fused, std::string outcome) {
  --depth_;
  if (step < 0) return;  // dropped at the cap
  FusionStep& s = fusion_steps_[static_cast<size_t>(step)];
  s.fused = fused;
  s.outcome = std::move(outcome);
}

std::string OptimizerTrace::ToString() const {
  std::ostringstream os;
  os << "== optimizer trace ==\n";
  os << "rules (per phase):\n";
  for (const RulePhaseStats& s : rule_stats_) {
    char line[160];
    std::snprintf(line, sizeof(line), "  %-12s %-26s attempts=%-6lld fired=%lld\n",
                  s.phase.c_str(), s.rule.c_str(),
                  static_cast<long long>(s.attempts),
                  static_cast<long long>(s.fired));
    os << line;
  }
  os << "firings:\n";
  for (const RuleFiring& f : firings_) {
    os << "  [" << f.phase << "] " << f.rule << " @ " << f.anchor << " ("
       << f.ops_before << " -> " << f.ops_after << " ops)\n";
    if (!f.props.empty()) {
      os << "    props: " << f.props << "\n";
    }
  }
  if (semantic_plans_verified_ > 0 || semantic_obligations_ > 0) {
    os << "semantic checks: plans=" << semantic_plans_verified_
       << " nodes_derived=" << semantic_nodes_derived_
       << " obligations=" << semantic_obligations_ << "\n";
  }
  if (!cost_decisions_.empty()) {
    os << "cost decisions (fuse vs spool; share vs solo):\n";
    for (const CostDecision& d : cost_decisions_) {
      char line[256];
      std::snprintf(line, sizeof(line),
                    "  %-5s %s%s %s consumers=%d reexec=%.0fns spool=%.0fns "
                    "est_rows=%.0f est_bytes=%lld (%s)\n",
                    d.cross_query ? (d.spooled ? "share" : "solo")
                                  : (d.spooled ? "spool" : "fuse"),
                    d.cross_query ? "[cross-query] " : "", d.anchor.c_str(),
                    FingerprintToString(d.fingerprint).c_str(), d.consumers,
                    d.reexec_cost_ns, d.spool_cost_ns, d.est_rows,
                    static_cast<long long>(d.est_bytes),
                    d.measured ? "measured" : "estimated");
      os << line;
    }
  }
  if (!fusion_steps_.empty()) {
    os << "fusion recursion:\n";
    for (const FusionStep& s : fusion_steps_) {
      os << "  " << std::string(static_cast<size_t>(s.depth) * 2, ' ')
         << "Fuse(" << s.left << ", " << s.right << ") -> "
         << (s.fused ? "" : "\xE2\x8A\xA5 ")  // ⊥
         << s.outcome << "\n";
    }
    if (dropped_fusion_steps_ > 0) {
      os << "  (" << dropped_fusion_steps_ << " further steps dropped)\n";
    }
  }
  return os.str();
}

std::string OptimizerTrace::DescribeNode(const LogicalOp& op) {
  std::ostringstream os;
  os << OpKindName(op.kind());
  switch (op.kind()) {
    case OpKind::kScan:
      os << "(" << Cast<ScanOp>(op).table()->name() << ")";
      break;
    case OpKind::kJoin:
      os << "(" << JoinTypeName(Cast<JoinOp>(op).join_type()) << ")";
      break;
    case OpKind::kAggregate: {
      const auto& agg = Cast<AggregateOp>(op);
      os << "(groups=" << agg.group_by().size()
         << " aggs=" << agg.aggregates().size() << ")";
      break;
    }
    case OpKind::kLimit:
      os << "(" << Cast<LimitOp>(op).limit() << ")";
      break;
    case OpKind::kSpool:
      os << "(id=" << Cast<SpoolOp>(op).spool_id() << ")";
      break;
    case OpKind::kUnionAll:
      os << "(" << op.num_children() << ")";
      break;
    case OpKind::kFilter:
    case OpKind::kProject:
    case OpKind::kWindow:
    case OpKind::kMarkDistinct:
    case OpKind::kValues:
    case OpKind::kSort:
    case OpKind::kEnforceSingleRow:
    case OpKind::kApply:
      break;  // the kind name is identifying enough
  }
  // The output schema pins the anchor to a unique plan node even when two
  // nodes share kind and parameters (column ids are globally unique).
  if (op.schema().num_columns() > 0) {
    os << " -> #" << op.schema().column(0).id;
  }
  return os.str();
}

}  // namespace fusiondb
