// QueryProfile: the export layer of the profiling subsystem. Bundles the
// executed plan, per-operator runtime stats, global ExecMetrics, wall time
// and (optionally) the optimizer trace, and renders them as EXPLAIN
// ANALYZE text or a JSON document (hand-rolled writer, no dependencies).
#ifndef FUSIONDB_OBS_PROFILE_H_
#define FUSIONDB_OBS_PROFILE_H_

#include <string>
#include <vector>

#include "exec/query_result.h"
#include "obs/operator_stats.h"
#include "obs/optimizer_trace.h"
#include "plan/logical_plan.h"

namespace fusiondb {

struct QueryProfile {
  std::string query;   // label, e.g. the TPC-DS query name
  std::string config;  // optimizer configuration, e.g. "fused"
  PlanPtr plan;        // the executed plan
  std::vector<OperatorStats> operator_stats;  // preorder, aligned with plan
  ExecMetrics metrics;
  double wall_ms = 0.0;
  const OptimizerTrace* trace = nullptr;  // optional; not owned
};

/// Assembles a profile from an executed result. `trace` may be null.
QueryProfile MakeQueryProfile(std::string query, std::string config,
                              const PlanPtr& plan, const QueryResult& result,
                              const OptimizerTrace* trace = nullptr);

/// JSON document (schema documented in DESIGN.md §9): query/config/wall_ms,
/// the global metrics object, the plan as a nested operator tree with each
/// node's stats inlined, and the optimizer trace when present.
std::string ProfileToJson(const QueryProfile& profile);

/// ProfileToJson written to `path`; ExecutionError on failure.
Status WriteProfileJson(const QueryProfile& profile, const std::string& path);

/// The plan tree annotated with per-operator runtime stats — the EXPLAIN
/// ANALYZE rendering. Falls back to the plain plan when the result carries
/// no stats (profiling disabled).
std::string ExplainAnalyze(const PlanPtr& plan, const QueryResult& result);

}  // namespace fusiondb

#endif  // FUSIONDB_OBS_PROFILE_H_
