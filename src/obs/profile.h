// QueryProfile: the export layer of the profiling subsystem. Bundles the
// executed plan, per-operator runtime stats, global ExecMetrics, wall time
// and (optionally) the optimizer trace, and renders them as EXPLAIN
// ANALYZE text or a JSON document (hand-rolled writer, no dependencies).
#ifndef FUSIONDB_OBS_PROFILE_H_
#define FUSIONDB_OBS_PROFILE_H_

#include <string>
#include <vector>

#include "exec/query_result.h"
#include "obs/operator_stats.h"
#include "obs/optimizer_trace.h"
#include "plan/logical_plan.h"

namespace fusiondb {

/// Cross-query sharing attribution for one session's profile (src/server).
/// When a session's query executed as part of a fused group, its metrics
/// and operator stats describe the *shared* execution; this block records
/// how that shared work divides across the group: the bytes the group paid
/// once, this session's per-capita share, and what the same queries would
/// have scanned run in isolation (exact for identical-member groups; an
/// upper bound when the fused plan reads a column union).
struct SessionSharing {
  uint64_t session_id = 0;
  uint64_t group_fingerprint = 0;       // fused plan fingerprint
  int consumers = 0;                    // sessions sharing the execution
  int64_t shared_bytes_scanned = 0;     // paid once by the whole group
  int64_t attributed_bytes_scanned = 0; // this session's share
  int64_t isolated_bytes_scanned = 0;   // estimate: consumers × shared
};

struct QueryProfile {
  std::string query;   // label, e.g. the TPC-DS query name
  std::string config;  // optimizer configuration, e.g. "fused"
  PlanPtr plan;        // the executed plan
  std::vector<OperatorStats> operator_stats;  // preorder, aligned with plan
  std::vector<PipelineRecord> pipelines;      // compiled-pipeline outcomes
  ExecMetrics metrics;
  double wall_ms = 0.0;
  const OptimizerTrace* trace = nullptr;  // optional; not owned

  /// Set by the server for session executions; `consumers == 0` (default)
  /// means no sharing block is emitted.
  SessionSharing sharing;
};

/// Assembles a profile from an executed result. `trace` may be null.
QueryProfile MakeQueryProfile(std::string query, std::string config,
                              const PlanPtr& plan, const QueryResult& result,
                              const OptimizerTrace* trace = nullptr);

/// JSON document (schema documented in DESIGN.md §9): query/config/wall_ms,
/// the global metrics object, the plan as a nested operator tree with each
/// node's stats inlined, and the optimizer trace when present.
std::string ProfileToJson(const QueryProfile& profile);

/// ProfileToJson written to `path`; ExecutionError on failure.
Status WriteProfileJson(const QueryProfile& profile, const std::string& path);

/// The plan tree annotated with per-operator runtime stats — the EXPLAIN
/// ANALYZE rendering. Falls back to the plain plan when the result carries
/// no stats (profiling disabled).
std::string ExplainAnalyze(const PlanPtr& plan, const QueryResult& result);

}  // namespace fusiondb

#endif  // FUSIONDB_OBS_PROFILE_H_
