#include "obs/profile.h"

#include <cstdio>

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "plan/plan_fingerprint.h"
#include "plan/plan_printer.h"

namespace fusiondb {

namespace {

void WriteMetrics(const ExecMetrics& m, JsonWriter* w) {
  w->BeginObject();
  w->Field("bytes_scanned", m.bytes_scanned);
  w->Field("rows_scanned", m.rows_scanned);
  w->Field("partitions_scanned", m.partitions_scanned);
  w->Field("partitions_pruned", m.partitions_pruned);
  w->Field("rows_produced", m.rows_produced);
  w->Field("peak_hash_bytes", m.peak_hash_bytes);
  w->Field("spool_bytes_written", m.spool_bytes_written);
  w->Field("spool_bytes_read", m.spool_bytes_read);
  w->EndObject();
}

void WriteStats(const OperatorStats& s, JsonWriter* w) {
  w->BeginObject();
  if (s.pipeline >= 0) w->Field("pipeline", static_cast<int64_t>(s.pipeline));
  w->Field("next_calls", s.next_calls);
  w->Field("chunks_in", s.chunks_in);
  w->Field("chunks_out", s.chunks_out);
  w->Field("rows_in", s.rows_in);
  w->Field("rows_out", s.rows_out);
  w->Field("open_ns", s.open_ns);
  w->Field("next_ns", s.next_ns);
  w->Field("self_ns", s.self_ns);
  w->Field("close_ns", s.close_ns);
  w->Field("peak_memory_bytes", s.peak_memory_bytes);
  w->Field("spool_hits", s.spool_hits);
  w->Field("spool_builds", s.spool_builds);
  w->Field("bytes_scanned", s.bytes_scanned);
  w->EndObject();
}

/// Writes `plan` as a nested JSON tree, consuming preorder ids from
/// `counter` so each node lines up with its stats slot.
void WritePlanNode(const PlanPtr& plan,
                   const std::vector<OperatorStats>& stats, int* counter,
                   JsonWriter* w) {
  int id = (*counter)++;
  w->BeginObject();
  w->Field("id", static_cast<int64_t>(id));
  w->Field("kind", OpKindName(plan->kind()));
  w->Field("node", OptimizerTrace::DescribeNode(*plan));
  if (id >= 0 && static_cast<size_t>(id) < stats.size()) {
    w->Key("stats");
    WriteStats(stats[static_cast<size_t>(id)], w);
  }
  w->Key("children");
  w->BeginArray();
  for (const PlanPtr& c : plan->children()) {
    WritePlanNode(c, stats, counter, w);
  }
  w->EndArray();
  w->EndObject();
}

void WriteTrace(const OptimizerTrace& t, JsonWriter* w) {
  w->BeginObject();
  w->Key("rules");
  w->BeginArray();
  for (const RulePhaseStats& s : t.rule_stats()) {
    w->BeginObject();
    w->Field("phase", s.phase);
    w->Field("rule", s.rule);
    w->Field("attempts", s.attempts);
    w->Field("fired", s.fired);
    w->EndObject();
  }
  w->EndArray();
  w->Key("firings");
  w->BeginArray();
  for (const RuleFiring& f : t.firings()) {
    w->BeginObject();
    w->Field("phase", f.phase);
    w->Field("rule", f.rule);
    w->Field("anchor", f.anchor);
    w->Field("ops_before", static_cast<int64_t>(f.ops_before));
    w->Field("ops_after", static_cast<int64_t>(f.ops_after));
    if (!f.props.empty()) w->Field("props", f.props);
    w->EndObject();
  }
  w->EndArray();
  w->Key("fusion");
  w->BeginArray();
  for (const FusionStep& s : t.fusion_steps()) {
    w->BeginObject();
    w->Field("depth", static_cast<int64_t>(s.depth));
    w->Field("left", s.left);
    w->Field("right", s.right);
    w->Field("fused", s.fused);
    w->Field("outcome", s.outcome);
    w->EndObject();
  }
  w->EndArray();
  w->Key("cost_decisions");
  w->BeginArray();
  for (const CostDecision& d : t.cost_decisions()) {
    w->BeginObject();
    w->Field("anchor", d.anchor);
    // Hex-rendered: a raw uint64 does not fit JsonWriter's int64 (and JSON
    // numbers past 2^53 lose precision anyway).
    w->Field("fingerprint", FingerprintToString(d.fingerprint));
    w->Field("consumers", static_cast<int64_t>(d.consumers));
    w->Field("reexec_cost_ns", d.reexec_cost_ns);
    w->Field("spool_cost_ns", d.spool_cost_ns);
    w->Field("est_rows", d.est_rows);
    w->Field("est_bytes", d.est_bytes);
    w->Field("measured", d.measured);
    w->Field("spooled", d.spooled);
    w->Field("cross_query", d.cross_query);
    w->EndObject();
  }
  w->EndArray();
  if (t.dropped_fusion_steps() > 0) {
    w->Field("dropped_fusion_steps", t.dropped_fusion_steps());
  }
  if (t.semantic_plans_verified() > 0 || t.semantic_obligations() > 0) {
    w->Field("semantic_plans_verified", t.semantic_plans_verified());
    w->Field("semantic_nodes_derived", t.semantic_nodes_derived());
    w->Field("semantic_obligations", t.semantic_obligations());
  }
  w->EndObject();
}

std::string FormatMs(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) * 1e-6);
  return buf;
}

}  // namespace

QueryProfile MakeQueryProfile(std::string query, std::string config,
                              const PlanPtr& plan, const QueryResult& result,
                              const OptimizerTrace* trace) {
  QueryProfile p;
  p.query = std::move(query);
  p.config = std::move(config);
  p.plan = plan;
  p.operator_stats = result.operator_stats();
  p.pipelines = result.pipelines();
  p.metrics = result.metrics();
  p.wall_ms = result.wall_ms();
  p.trace = trace;
  return p;
}

std::string ProfileToJson(const QueryProfile& profile) {
  JsonWriter w;
  w.BeginObject();
  w.Field("schema_version", kTelemetrySchemaVersion);
  w.Field("query", profile.query);
  w.Field("config", profile.config);
  w.Field("wall_ms", profile.wall_ms);
  w.Key("metrics");
  WriteMetrics(profile.metrics, &w);
  if (profile.plan != nullptr) {
    w.Key("plan");
    int counter = 0;
    WritePlanNode(profile.plan, profile.operator_stats, &counter, &w);
  }
  if (!profile.pipelines.empty()) {
    w.Key("pipelines");
    w.BeginArray();
    for (const PipelineRecord& r : profile.pipelines) {
      w.BeginObject();
      w.Field("root_op_id", static_cast<int64_t>(r.root_op_id));
      w.Field("root_kind", r.root_kind);
      w.Field("compiled", r.compiled());
      if (r.compiled()) {
        w.Field("ops_fused", static_cast<int64_t>(r.ops_fused));
      } else {
        w.Field("fallback", r.fallback);
      }
      w.EndObject();
    }
    w.EndArray();
  }
  if (profile.sharing.consumers > 0) {
    w.Key("sharing");
    w.BeginObject();
    w.Field("session_id", static_cast<int64_t>(profile.sharing.session_id));
    w.Field("group_fingerprint",
            FingerprintToString(profile.sharing.group_fingerprint));
    w.Field("consumers", static_cast<int64_t>(profile.sharing.consumers));
    w.Field("shared_bytes_scanned", profile.sharing.shared_bytes_scanned);
    w.Field("attributed_bytes_scanned",
            profile.sharing.attributed_bytes_scanned);
    w.Field("isolated_bytes_scanned", profile.sharing.isolated_bytes_scanned);
    w.EndObject();
  }
  if (profile.trace != nullptr) {
    w.Key("trace");
    WriteTrace(*profile.trace, &w);
  }
  w.EndObject();
  return w.TakeString();
}

Status WriteProfileJson(const QueryProfile& profile, const std::string& path) {
  std::string json = ProfileToJson(profile);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::ExecutionError("cannot open profile output file: " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size();
  ok = (std::fputc('\n', f) != EOF) && ok;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) return Status::ExecutionError("failed writing profile to " + path);
  return Status::OK();
}

std::string ExplainAnalyze(const PlanPtr& plan, const QueryResult& result) {
  const std::vector<OperatorStats>& stats = result.operator_stats();
  if (stats.empty()) return PlanToString(plan);
  std::string text = PlanToString(plan, [&stats](const LogicalOp& op, int id) {
    (void)op;
    if (id < 0 || static_cast<size_t>(id) >= stats.size()) return std::string();
    const OperatorStats& s = stats[static_cast<size_t>(id)];
    std::string out = "  [#" + std::to_string(id) +
                      " rows=" + std::to_string(s.rows_out) +
                      " chunks=" + std::to_string(s.chunks_out) +
                      " next=" + FormatMs(s.next_ns) + "ms" +
                      " self=" + FormatMs(s.self_ns) + "ms";
    if (s.peak_memory_bytes > 0) {
      out += " mem=" + std::to_string(s.peak_memory_bytes) + "B";
    }
    if (s.spool_hits > 0) {
      out += " spool_hits=" + std::to_string(s.spool_hits);
    }
    if (s.pipeline >= 0) {
      out += " pipeline=" + std::to_string(s.pipeline);
    }
    out += "]";
    return out;
  });
  // Compilation outcomes per chain: compiled pipelines list their fused
  // operator count, fallbacks their reason (DESIGN.md §13 taxonomy).
  const std::vector<PipelineRecord>& pipes = result.pipelines();
  if (!pipes.empty()) {
    text += "\npipelines:\n";
    for (size_t i = 0; i < pipes.size(); ++i) {
      const PipelineRecord& r = pipes[i];
      if (r.compiled()) {
        text += "  #" + std::to_string(i) + " compiled root=op" +
                std::to_string(r.root_op_id) + " (" + r.root_kind +
                ") ops_fused=" + std::to_string(r.ops_fused) + "\n";
      } else {
        text += "  #" + std::to_string(i) + " fallback root=op" +
                std::to_string(r.root_op_id) + " (" + r.root_kind +
                ") reason=" + r.fallback + "\n";
      }
    }
  }
  return text;
}

}  // namespace fusiondb
