// JSON and Prometheus text exposition for MetricsSnapshot (DESIGN.md §9.4).
#include "obs/metrics.h"

#include <cstdio>
#include <string>

#include "obs/json_writer.h"

namespace fusiondb {

namespace {

/// Splits a registered name like `family_total{table="x"}` into the metric
/// family and the brace-less label body (`table="x"`, empty when the name
/// carries no labels).
void SplitLabels(const std::string& name, std::string* family,
                 std::string* labels) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *family = name;
    labels->clear();
    return;
  }
  *family = name.substr(0, brace);
  size_t close = name.rfind('}');
  if (close == std::string::npos || close <= brace + 1) {
    labels->clear();
    return;
  }
  *labels = name.substr(brace + 1, close - brace - 1);
}

void AppendTypeLineOnce(const std::string& family, const char* type,
                        std::vector<std::string>* seen, std::string* out) {
  for (const std::string& s : *seen) {
    if (s == family) return;
  }
  seen->push_back(family);
  out->append("# TYPE ");
  out->append(family);
  out->append(" ");
  out->append(type);
  out->append("\n");
}

void AppendSample(const std::string& family, const std::string& labels,
                  int64_t value, std::string* out) {
  out->append(family);
  if (!labels.empty()) {
    out->append("{");
    out->append(labels);
    out->append("}");
  }
  out->append(" ");
  out->append(std::to_string(value));
  out->append("\n");
}

void WriteHistogram(const HistogramSnapshot& h, JsonWriter* w) {
  w->BeginObject();
  w->Field("count", h.count);
  w->Field("sum", h.sum);
  w->Field("min", h.min);
  w->Field("max", h.max);
  w->Field("p50", h.ValueAtQuantile(0.50));
  w->Field("p90", h.ValueAtQuantile(0.90));
  w->Field("p99", h.ValueAtQuantile(0.99));
  w->Key("buckets");
  w->BeginArray();
  for (size_t i = 0; i < h.buckets.size(); ++i) {
    if (h.buckets[i] == 0) continue;
    w->BeginObject();
    w->Field("le", MetricBucketUpperBound(static_cast<int32_t>(i)));
    w->Field("count", h.buckets[i]);
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

}  // namespace

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  JsonWriter w;
  w.BeginObject();
  w.Field("schema_version", kTelemetrySchemaVersion);
  w.Key("counters");
  w.BeginObject();
  for (const auto& c : snapshot.counters) {
    w.Field(c.first, c.second);
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& g : snapshot.gauges) {
    w.Field(g.first, g.second);
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& h : snapshot.histograms) {
    w.Key(h.first);
    WriteHistogram(h.second, &w);
  }
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

std::string MetricsToPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::vector<std::string> seen;  // families with a TYPE line already out
  std::string family;
  std::string labels;
  for (const auto& c : snapshot.counters) {
    SplitLabels(c.first, &family, &labels);
    AppendTypeLineOnce(family, "counter", &seen, &out);
    AppendSample(family, labels, c.second, &out);
  }
  for (const auto& g : snapshot.gauges) {
    SplitLabels(g.first, &family, &labels);
    AppendTypeLineOnce(family, "gauge", &seen, &out);
    AppendSample(family, labels, g.second, &out);
  }
  for (const auto& hp : snapshot.histograms) {
    SplitLabels(hp.first, &family, &labels);
    const HistogramSnapshot& h = hp.second;
    AppendTypeLineOnce(family, "histogram", &seen, &out);
    std::string prefix = labels.empty() ? "" : labels + ",";
    int64_t cum = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      cum += h.buckets[i];
      AppendSample(family + "_bucket",
                   prefix + "le=\"" +
                       std::to_string(
                           MetricBucketUpperBound(static_cast<int32_t>(i))) +
                       "\"",
                   cum, &out);
    }
    AppendSample(family + "_bucket", prefix + "le=\"+Inf\"", h.count, &out);
    AppendSample(family + "_sum", labels, h.sum, &out);
    AppendSample(family + "_count", labels, h.count, &out);
  }
  return out;
}

Status WriteMetricsJson(const MetricsSnapshot& snapshot,
                        const std::string& path) {
  std::string json = MetricsToJson(snapshot);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::ExecutionError("cannot open metrics output file: " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size();
  ok = (std::fputc('\n', f) != EOF) && ok;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) return Status::ExecutionError("failed writing metrics to " + path);
  return Status::OK();
}

}  // namespace fusiondb
