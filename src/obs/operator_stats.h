// Per-operator runtime statistics — the data layer of the profiling
// subsystem (EXPLAIN ANALYZE, JSON profiles; DESIGN.md §9).
//
// Threading model: identical in spirit to ExecMetrics (exec_context.h).
// Every counter here is written by the *driver* thread only — the thread
// pulling Next() through the operator tree. Parallel regions inside an
// operator (scan morsels, aggregation partials, join builds) never touch
// OperatorStats from workers: they accumulate into ExecMetrics shards, and
// per-operator memory is attributed by the owning operator on the driver
// thread once, after the region has merged. Plain int64 counters are
// therefore thread-count-invariant and TSan-clean by construction, and
// timers fire only at chunk granularity (one steady_clock read pair per
// Next() call), keeping the always-on overhead negligible.
//
// This header is intentionally link-free (header-only) so fusiondb_exec can
// fill stats without depending on the fusiondb_obs rendering library.
#ifndef FUSIONDB_OBS_OPERATOR_STATS_H_
#define FUSIONDB_OBS_OPERATOR_STATS_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace fusiondb {

/// Monotonic wall clock in nanoseconds. The single timing authority for
/// execution code: src/exec must not use std::chrono directly (enforced by
/// tools/lint.sh), so every measurement flows through one clock.
inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One executed operator's runtime counters. Slots live in ExecContext and
/// are keyed by a stable operator id: the preorder index of the operator's
/// logical plan node in the executed plan (root = 0). The same preorder walk
/// of the plan therefore maps ids back to plan nodes with no side table.
struct OperatorStats {
  int32_t id = -1;      // preorder index in the executed plan
  int32_t parent = -1;  // parent's id; -1 for the root
  std::string kind;     // OpKindName of the logical node
  std::string detail;   // kind-specific context (table name, join type, ...)
  // Compiled-pipeline membership: index into the query's PipelineRecords
  // when this operator was fused into a compiled pipeline, -1 otherwise.
  // Fused interior operators keep their preorder slot (zero counters) so
  // the id ↔ plan-node mapping survives compilation.
  int32_t pipeline = -1;

  // Driver-thread counters, updated once per Next() call.
  int64_t next_calls = 0;
  int64_t chunks_out = 0;
  int64_t rows_out = 0;
  int64_t open_ns = 0;   // building this operator and its subtree
  int64_t next_ns = 0;   // cumulative time inside Next(), children included
  int64_t close_ns = 0;  // tearing down this operator and its subtree

  // Blocking-operator extras: peak accounted hash/buffer memory, and for
  // spool reads, how many consumers were served from an already-built
  // buffer (the spool-hit count) vs how many had to build it (the miss).
  int64_t peak_memory_bytes = 0;
  int64_t spool_hits = 0;
  int64_t spool_builds = 0;

  // Scan-only: bytes this scan decoded, attributed on the driver thread
  // (serial scans inline, parallel scans once after their region merges) so
  // per-table service counters can be derived from the slot's detail.
  int64_t bytes_scanned = 0;

  // Derived at finalize time from the parent links (never updated live).
  int64_t chunks_in = 0;
  int64_t rows_in = 0;
  int64_t self_ns = 0;  // next_ns minus the children's next_ns
};

/// Fills the derived fields of a preorder-indexed stats vector: each
/// operator's input counters are the sum of its children's outputs, and
/// self time is cumulative time minus the children's cumulative time
/// (clamped at zero against clock jitter). Parents precede children in
/// preorder, so a single reverse-order pass needs no recursion.
inline void FinalizeOperatorStats(std::vector<OperatorStats>* stats) {
  for (OperatorStats& s : *stats) {
    s.chunks_in = 0;
    s.rows_in = 0;
    s.self_ns = s.next_ns;
  }
  for (size_t i = stats->size(); i-- > 1;) {
    const OperatorStats& s = (*stats)[i];
    if (s.parent < 0) continue;
    OperatorStats& p = (*stats)[static_cast<size_t>(s.parent)];
    p.chunks_in += s.chunks_out;
    p.rows_in += s.rows_out;
    p.self_ns -= s.next_ns;
  }
  for (OperatorStats& s : *stats) {
    if (s.self_ns < 0) s.self_ns = 0;
  }
}

}  // namespace fusiondb

#endif  // FUSIONDB_OBS_OPERATOR_STATS_H_
