// OptimizerTrace: records what the optimizer and the Fuse(P1,P2) primitive
// actually did to a query — per phase, every rule attempted and whether it
// fired (with the plan node it anchored on), and for fusion the full
// recursion path with the Section III case taken or the structured reason
// the call returned ⊥ (the paper's failure value, std::nullopt in code).
//
// The trace rides on PlanContext as a nullable pointer: no trace attached
// (the default) means zero work in the optimizer and exactly one branch in
// Fuse, so tracing costs nothing unless requested. Rule/Fuser signatures
// are unchanged.
#ifndef FUSIONDB_OBS_OPTIMIZER_TRACE_H_
#define FUSIONDB_OBS_OPTIMIZER_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "plan/logical_plan.h"

namespace fusiondb {

/// Attempt/fire counters for one (phase, rule) pair.
struct RulePhaseStats {
  std::string phase;
  std::string rule;
  int64_t attempts = 0;
  int64_t fired = 0;
};

/// One successful rewrite: which rule, where it anchored, and the operator
/// counts before/after (fusion rewrites shrink the plan; that delta is the
/// paper's whole point).
struct RuleFiring {
  std::string phase;
  std::string rule;
  std::string anchor;  // description of the pre-rewrite anchor node
  int ops_before = 0;
  int ops_after = 0;
  std::string props;  // derived semantic properties of the rewritten subtree
                      // (semantic tier only; empty otherwise)
};

/// One Fuse(P1, P2) invocation in the recursion. `outcome` is either the
/// Section III case label ("III.E (aggregate)", ...) on success or the
/// structured ⊥ reason ("scans read different tables", "differing group
/// keys", ...) on failure.
struct FusionStep {
  int depth = 0;       // recursion depth (0 = the outermost pair)
  std::string left;    // OpKindName of P1's root
  std::string right;   // OpKindName of P2's root
  bool fused = false;
  std::string outcome;
};

/// One cost-model pricing of a shared computation: the subtree (or, for
/// cross-query decisions, the fused plan), how many consumers read it, both
/// priced alternatives, and which one was taken.
///
/// Two kinds share this record. Within-plan fuse-vs-spool (adaptive spool
/// mode, `cross_query == false`): the costs are re-execution vs spooling
/// and `spooled` means materialized. Cross-query share-vs-solo (the
/// session layer, `cross_query == true`): `reexec_cost_ns` is the cost of
/// the members run in isolation, `spool_cost_ns` the cost of the fused
/// plan plus per-session restoration, and `spooled` means shared.
struct CostDecision {
  std::string anchor;        // description of the shared subtree's root
  uint64_t fingerprint = 0;  // plan fingerprint of the shared subtree
  int consumers = 0;         // readers the duplicates collapse into
  double reexec_cost_ns = 0; // consumers × subtree cost (or Σ solo costs)
  double spool_cost_ns = 0;  // spool alternative (or shared-execution cost)
  double est_rows = 0;       // estimated subtree output rows
  int64_t est_bytes = 0;     // estimated spooled bytes
  bool measured = false;     // estimate backed by measured feedback
  bool spooled = false;      // true: materialized (or shared); false: solo
  bool cross_query = false;  // share-vs-solo across sessions (src/server)
};

class OptimizerTrace {
 public:
  /// Phase bookkeeping (normalize, decorrelate, fuse, ...). Subsequent rule
  /// events are attributed to the current phase.
  void BeginPhase(std::string name);
  const std::string& current_phase() const { return phase_; }

  /// Records one rule application attempt; `fired` when it rewrote.
  void RecordRuleAttempt(std::string_view rule, bool fired);

  /// Records a successful rewrite with its anchor node.
  void RecordRuleFiring(std::string_view rule, const LogicalOp& anchor,
                        int ops_before, int ops_after);

  /// Fusion recursion bookkeeping: Enter when Fuse(p1, p2) starts and
  /// returns the step's index; Resolve fills the outcome when it returns.
  /// Returns -1 when the step cap is hit (the resolve is then dropped too).
  int FusionEnter(const LogicalOp& p1, const LogicalOp& p2);
  void FusionResolve(int step, bool fused, std::string outcome);

  /// Attaches a semantic-property dump to the most recent firing (the
  /// semantic tier calls this right after verifying the rewrite).
  void AnnotateLastFiring(std::string props);

  /// Records one cost-model fuse-vs-spool pricing (adaptive spool mode).
  void RecordCostDecision(CostDecision decision);

  /// Accumulates semantic-tier work counters (plans verified, property
  /// nodes derived, ledger obligations discharged).
  void RecordSemanticChecks(int64_t plans, int64_t nodes, int64_t obligations);

  const std::vector<RulePhaseStats>& rule_stats() const { return rule_stats_; }
  const std::vector<RuleFiring>& firings() const { return firings_; }
  const std::vector<FusionStep>& fusion_steps() const { return fusion_steps_; }
  const std::vector<CostDecision>& cost_decisions() const {
    return cost_decisions_;
  }
  int64_t dropped_fusion_steps() const { return dropped_fusion_steps_; }
  int64_t semantic_plans_verified() const { return semantic_plans_verified_; }
  int64_t semantic_nodes_derived() const { return semantic_nodes_derived_; }
  int64_t semantic_obligations() const { return semantic_obligations_; }

  /// Human-readable rendering (run_query --trace-optimizer).
  std::string ToString() const;

  /// Short description of a plan node for anchors: kind plus the most
  /// identifying parameter (table, join type, group count, ...).
  static std::string DescribeNode(const LogicalOp& op);

 private:
  std::string phase_;
  std::vector<RulePhaseStats> rule_stats_;
  std::vector<RuleFiring> firings_;
  std::vector<FusionStep> fusion_steps_;
  std::vector<CostDecision> cost_decisions_;
  int64_t dropped_fusion_steps_ = 0;
  int64_t semantic_plans_verified_ = 0;
  int64_t semantic_nodes_derived_ = 0;
  int64_t semantic_obligations_ = 0;
  int depth_ = 0;
};

}  // namespace fusiondb

#endif  // FUSIONDB_OBS_OPTIMIZER_TRACE_H_
