// Minimal streaming JSON writer for profile and benchmark export. The repo
// takes no third-party JSON dependency; this hand-rolled writer covers the
// subset we emit (objects, arrays, strings, ints, doubles, bools, null)
// with correct escaping and comma placement.
#ifndef FUSIONDB_OBS_JSON_WRITER_H_
#define FUSIONDB_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fusiondb {

/// Usage:
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("query"); w.String("q65");
///   w.Key("ops");   w.BeginArray(); w.Int(3); w.EndArray();
///   w.EndObject();
///   std::string json = w.TakeString();
///
/// The writer trusts its caller to produce a well-formed nesting (every
/// value inside an object preceded by Key, Begin/End balanced); it only
/// automates separators and escaping.
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  void Key(std::string_view key);
  void String(std::string_view value);
  void Int(int64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Key/value shorthands. The const char* overload exists because a bare
  /// string literal would otherwise prefer the standard pointer-to-bool
  /// conversion over string_view's converting constructor.
  void Field(std::string_view key, std::string_view value);
  void Field(std::string_view key, const char* value);
  void Field(std::string_view key, int64_t value);
  void Field(std::string_view key, double value);
  void Field(std::string_view key, bool value);

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void MaybeComma();
  void AppendEscaped(std::string_view s);

  std::string out_;
  // One entry per open scope: true once the scope has a first element (so
  // the next element needs a leading comma).
  std::vector<bool> has_element_;
  bool pending_key_ = false;  // a Key was just written; next value follows it
};

}  // namespace fusiondb

#endif  // FUSIONDB_OBS_JSON_WRITER_H_
