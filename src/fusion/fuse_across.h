// Cross-plan fusion: folding Fuse(P1, P2) over N whole query plans so that
// N queries sharing work pay for it once — the cross-query analogue of the
// within-plan rules in rules.h, and the mechanism behind src/server's
// shared execution ("Pay One, Get Hundreds for Free" in PAPERS.md).
//
// The fold is sound because of the Fuse contract (fuse.h): the fused plan's
// schema contains all of P1's output columns *with their ids intact*. After
// plan_k+1 = Fuse(plan_k, next).plan, every column an earlier consumer's
// compensating filter or mapping names is still present in plan_k+1, so
// earlier consumers stay restorable — each one just accumulates the new
// step's left filter conjunctively:
//
//   member_i == Project_{M_i(outCols(member_i))}( Filter_{F_i}(plan_N) )
//   F_i = R_i ∧ L_{i+1} ∧ ... ∧ L_N     (R_i from member i's own step)
//
// All plans must live in one PlanContext id space; plans submitted from
// separate sessions are renumbered first (plan/multi_plan.h).
#ifndef FUSIONDB_FUSION_FUSE_ACROSS_H_
#define FUSIONDB_FUSION_FUSE_ACROSS_H_

#include <optional>
#include <vector>

#include "fusion/fuse.h"

namespace fusiondb {

/// How to restore one member plan from the shared fused plan: keep the rows
/// where `filter` holds (nullptr means all rows), then read the member's
/// output column `c` from fused column `ApplyMap(mapping, c)`.
struct CrossConsumer {
  ExprPtr filter;     // over the fused plan's output; nullptr == TRUE
  ColumnMap mapping;  // member output ids -> fused plan output ids
};

/// Incrementally folds member plans into one shared plan. The server uses
/// one instance per candidate group: TryAdd either absorbs the plan
/// (returning its consumer index) or leaves the group untouched.
class CrossPlanFuser {
 public:
  /// `ctx` must be the context all added plans were built/renumbered in.
  /// When the context carries a semantic ledger (ctx->semantics()), each
  /// fold records implication obligations — every consumer's accumulated
  /// filter must imply the filter it replaced — for the semantic verifier
  /// to re-prove (DESIGN.md §8).
  explicit CrossPlanFuser(PlanContext* ctx) : fuser_(ctx), ctx_(ctx) {}

  /// Attempts to fold `plan` into the shared plan. The first add always
  /// succeeds (the shared plan is just `plan`). A plan whose fingerprint
  /// matches an existing member overlays that member's consumer directly —
  /// exact sharing for *any* operator shape, including roots Fuse has no
  /// rule for (Window, UnionAll) — the same identity notion the spool rule
  /// uses to group duplicate subtrees (§11.1). Otherwise the add succeeds
  /// iff Fuse(shared, plan) does. On failure the fuser is unchanged.
  std::optional<size_t> TryAdd(const PlanPtr& plan);

  /// The shared plan computing every member added so far.
  const PlanPtr& plan() const { return plan_; }

  size_t num_consumers() const { return consumers_.size(); }
  const CrossConsumer& consumer(size_t i) const { return consumers_[i]; }
  const std::vector<CrossConsumer>& consumers() const { return consumers_; }

  /// The member plans as added (consumer i restores members()[i]).
  const std::vector<PlanPtr>& members() const { return members_; }

  /// True when every compensating filter is TRUE — the shared plan computes
  /// exactly each member (always the case for identical members).
  bool Exact() const;

 private:
  Fuser fuser_;
  PlanContext* ctx_;  // not owned; carries the optional semantic ledger
  PlanPtr plan_;
  std::vector<CrossConsumer> consumers_;
  std::vector<PlanPtr> members_;
  std::vector<uint64_t> member_fingerprints_;  // aligned with members_
};

/// One-shot form: folds all of `plans` (at least one) or fails entirely.
struct CrossFuseResult {
  PlanPtr plan;
  std::vector<CrossConsumer> consumers;  // aligned with `plans`
};
std::optional<CrossFuseResult> FuseAcrossPlans(
    const std::vector<PlanPtr>& plans, PlanContext* ctx);

}  // namespace fusiondb

#endif  // FUSIONDB_FUSION_FUSE_ACROSS_H_
