#include "fusion/fuse.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "expr/expr_builder.h"
#include "expr/simplifier.h"
#include "obs/optimizer_trace.h"
#include "plan/spool.h"

namespace fusiondb {

namespace {

ExprPtr TrueExpr() { return Expr::MakeLiteral(Value::Bool(true)); }

/// Fingerprint of a possibly-null expression ("" for null).
std::string FpOrEmpty(const ExprPtr& e) {
  return e == nullptr ? std::string() : ExprFingerprint(e);
}

/// Fingerprint treating null masks as TRUE.
std::string MaskFp(const ExprPtr& mask) {
  return mask == nullptr ? ExprFingerprint(TrueExpr())
                         : ExprFingerprint(Simplify(mask));
}

bool SameColumnSet(const std::vector<ColumnId>& a,
                   const std::vector<ColumnId>& b) {
  if (a.size() != b.size()) return false;
  std::vector<ColumnId> sa = a;
  std::vector<ColumnId> sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  return sa == sb;
}

/// Which Section III case handled a *successful* fusion of this root pair.
/// Derived from the kinds after the fact (rather than recorded inside the
/// case handlers) so nested recursive fusions cannot clobber the label.
const char* FusionCaseLabel(OpKind k1, OpKind k2) {
  if (k1 != k2) return "III.G (root-mismatch compensation)";
  switch (k1) {
    case OpKind::kScan:
    case OpKind::kValues:
      return "III.A (base relations)";
    case OpKind::kFilter:
      return "III.B (filter)";
    case OpKind::kProject:
      return "III.C (project)";
    case OpKind::kJoin:
      return "III.D (join)";
    case OpKind::kAggregate:
      return "III.E (aggregate)";
    case OpKind::kMarkDistinct:
      return "III.F (mark-distinct)";
    case OpKind::kEnforceSingleRow:
    case OpKind::kLimit:
    case OpKind::kSort:
      return "III.G (default pass-through)";
    case OpKind::kSpool:
      return "spool identity";
    case OpKind::kWindow:
    case OpKind::kUnionAll:
    case OpKind::kApply:
      return "fused";  // unreachable: these kinds never fuse successfully
  }
  return "fused";
}

}  // namespace

bool FuseResult::Exact() const {
  return IsTrueLiteral(left_filter) && IsTrueLiteral(right_filter);
}

std::optional<FuseResult> Fuser::Reject(std::string reason) {
  last_reason_ = std::move(reason);
  return std::nullopt;
}

std::optional<FuseResult> Fuser::Fuse(const PlanPtr& p1, const PlanPtr& p2) {
  if (p1 == nullptr || p2 == nullptr) return std::nullopt;
  OptimizerTrace* trace = ctx_->trace();
  if (trace == nullptr) return FuseImpl(p1, p2);
  int step = trace->FusionEnter(*p1, *p2);
  last_reason_.clear();
  std::optional<FuseResult> result = FuseImpl(p1, p2);
  std::string outcome =
      result.has_value()
          ? std::string(FusionCaseLabel(p1->kind(), p2->kind()))
          : (last_reason_.empty() ? std::string("child fusion returned \xE2\x8A\xA5")
                                  : std::move(last_reason_));
  trace->FusionResolve(step, result.has_value(), std::move(outcome));
  // What the *caller's* frame sees if it fails without its own Reject: its
  // child fusion (this frame) was the cause.
  last_reason_ =
      result.has_value() ? std::string() : "child fusion returned \xE2\x8A\xA5";
  return result;
}

std::optional<FuseResult> Fuser::FuseImpl(const PlanPtr& p1,
                                          const PlanPtr& p2) {
  if (p1->kind() != p2->kind()) return FuseMismatched(p1, p2);
  switch (p1->kind()) {
    case OpKind::kScan:
      return FuseScan(Cast<ScanOp>(*p1), Cast<ScanOp>(*p2));
    case OpKind::kValues:
      return FuseValues(p1, p2);
    case OpKind::kFilter:
      return FuseFilter(Cast<FilterOp>(*p1), Cast<FilterOp>(*p2));
    case OpKind::kProject:
      return FuseProject(Cast<ProjectOp>(*p1), Cast<ProjectOp>(*p2));
    case OpKind::kJoin:
      return FuseJoin(Cast<JoinOp>(*p1), Cast<JoinOp>(*p2));
    case OpKind::kAggregate:
      return FuseAggregate(Cast<AggregateOp>(*p1), Cast<AggregateOp>(*p2));
    case OpKind::kMarkDistinct:
      return FuseMarkDistinct(Cast<MarkDistinctOp>(*p1),
                              Cast<MarkDistinctOp>(*p2));
    case OpKind::kEnforceSingleRow:
    case OpKind::kLimit:
    case OpKind::kSort:
      return FuseDefault(p1, p2);
    case OpKind::kSpool: {
      // Two consumers of the same spool are the same relation by
      // construction (shared child): identity fusion.
      const auto& s1 = Cast<SpoolOp>(*p1);
      const auto& s2 = Cast<SpoolOp>(*p2);
      if (s1.spool_id() != s2.spool_id()) {
        return Reject("consumers of different spools");
      }
      return FuseResult{p1, ColumnMap(), Expr::MakeLiteral(Value::Bool(true)),
                        Expr::MakeLiteral(Value::Bool(true))};
    }
    case OpKind::kWindow:
    case OpKind::kUnionAll:
    case OpKind::kApply: {
      std::string reason = "no fusion rule for ";
      reason += OpKindName(p1->kind());
      reason += " roots";
      return Reject(std::move(reason));
    }
  }
  return std::nullopt;
}

// --- Section III.A: table scans -------------------------------------------

std::optional<FuseResult> Fuser::FuseScan(const ScanOp& s1, const ScanOp& s2) {
  if (s1.table() != s2.table()) return Reject("scans read different tables");
  // Start from S1's columns; add S2 columns not already selected (keeping
  // S2's ids for the new ones), and map every S2 column.
  std::vector<int> table_columns = s1.table_columns();
  std::vector<ColumnInfo> cols = s1.schema().columns();
  ColumnMap mapping;
  for (size_t j = 0; j < s2.table_columns().size(); ++j) {
    int tc = s2.table_columns()[j];
    ColumnId id2 = s2.schema().column(j).id;
    int found = -1;
    for (size_t i = 0; i < table_columns.size(); ++i) {
      if (table_columns[i] == tc) {
        found = static_cast<int>(i);
        break;
      }
    }
    if (found >= 0) {
      mapping[id2] = cols[found].id;
    } else {
      table_columns.push_back(tc);
      cols.push_back(s2.schema().column(j));
      mapping[id2] = id2;
    }
  }
  // Pruning filters are derived from enclosing Filters; the fused scan
  // starts clean and a later pushdown pass re-derives pruning.
  PlanPtr fused = std::make_shared<ScanOp>(s1.table(), std::move(table_columns),
                                           Schema(std::move(cols)));
  return FuseResult{std::move(fused), std::move(mapping), TrueExpr(),
                    TrueExpr()};
}

std::optional<FuseResult> Fuser::FuseValues(const PlanPtr& p1,
                                            const PlanPtr& p2) {
  const auto& v1 = Cast<ValuesOp>(*p1);
  const auto& v2 = Cast<ValuesOp>(*p2);
  if (v1.schema().num_columns() != v2.schema().num_columns()) {
    return Reject("values nodes have different widths");
  }
  if (v1.rows().size() != v2.rows().size()) {
    return Reject("values nodes have different row counts");
  }
  for (size_t c = 0; c < v1.schema().num_columns(); ++c) {
    if (v1.schema().column(c).type != v2.schema().column(c).type) {
      return Reject("values nodes have different column types");
    }
  }
  for (size_t r = 0; r < v1.rows().size(); ++r) {
    for (size_t c = 0; c < v1.rows()[r].size(); ++c) {
      if (!(v1.rows()[r][c] == v2.rows()[r][c])) {
        return Reject("values nodes have different literals");
      }
    }
  }
  ColumnMap mapping;
  for (size_t c = 0; c < v1.schema().num_columns(); ++c) {
    mapping[v2.schema().column(c).id] = v1.schema().column(c).id;
  }
  return FuseResult{p1, std::move(mapping), TrueExpr(), TrueExpr()};
}

// --- Section III.B: filters -----------------------------------------------

std::optional<FuseResult> Fuser::FuseFilter(const FilterOp& f1,
                                            const FilterOp& f2) {
  auto sub = Fuse(f1.child(0), f2.child(0));
  if (!sub.has_value()) return std::nullopt;
  ExprPtr c1 = Simplify(f1.predicate());
  ExprPtr c2m = Simplify(ApplyMap(sub->mapping, f2.predicate()));
  if (ExprEquivalent(c1, c2m)) {
    // Equivalent filters: the fused filter is either one, compensations
    // carry over unchanged.
    PlanPtr fused = std::make_shared<FilterOp>(sub->plan, c1);
    return FuseResult{std::move(fused), std::move(sub->mapping),
                      std::move(sub->left_filter),
                      std::move(sub->right_filter)};
  }
  ExprPtr disjunction = Simplify(eb::Or(c1, c2m));
  PlanPtr fused = std::make_shared<FilterOp>(sub->plan, disjunction);
  return FuseResult{std::move(fused), std::move(sub->mapping),
                    MakeConjunction(sub->left_filter, c1),
                    MakeConjunction(sub->right_filter, c2m)};
}

// --- Section III.C: projections -------------------------------------------

std::optional<FuseResult> Fuser::FuseProject(const ProjectOp& r1,
                                             const ProjectOp& r2) {
  auto sub = Fuse(r1.child(0), r2.child(0));
  if (!sub.has_value()) return std::nullopt;
  std::vector<NamedExpr> assignments = r1.exprs();
  std::unordered_map<std::string, ColumnId> by_fp;
  std::unordered_map<ColumnId, bool> produced;  // output ids present
  for (const NamedExpr& a : assignments) {
    by_fp.emplace(ExprFingerprint(Simplify(a.expr)), a.id);
    produced[a.id] = true;
  }
  ColumnMap mapping = sub->mapping;
  for (const NamedExpr& a2 : r2.exprs()) {
    ExprPtr mapped = Simplify(ApplyMap(sub->mapping, a2.expr));
    auto it = by_fp.find(ExprFingerprint(mapped));
    if (it != by_fp.end()) {
      mapping[a2.id] = it->second;
    } else {
      assignments.push_back({a2.id, a2.name, mapped});
      by_fp.emplace(ExprFingerprint(mapped), a2.id);
      produced[a2.id] = true;
      mapping[a2.id] = a2.id;
    }
  }
  // The compensating filters L/R reference columns of the fused *child*.
  // Pass through any such column that the projection would otherwise drop,
  // so the reconstruction Filter_L(Project(...)) stays well-formed.
  auto ensure_passthrough = [&](const ExprPtr& cond) {
    if (cond == nullptr || IsTrueLiteral(cond)) return;
    std::vector<ColumnId> used;
    CollectColumns(cond, &used);
    for (ColumnId id : used) {
      if (produced.count(id) > 0) continue;
      int idx = sub->plan->schema().IndexOf(id);
      if (idx < 0) continue;  // not a child column (should not happen)
      const ColumnInfo& info = sub->plan->schema().column(idx);
      assignments.push_back(
          {info.id, info.name, Expr::MakeColumnRef(info.id, info.type)});
      produced[info.id] = true;
    }
  };
  ensure_passthrough(sub->left_filter);
  ensure_passthrough(sub->right_filter);
  PlanPtr fused =
      std::make_shared<ProjectOp>(sub->plan, std::move(assignments));
  return FuseResult{std::move(fused), std::move(mapping),
                    std::move(sub->left_filter), std::move(sub->right_filter)};
}

// --- Section III.D: joins --------------------------------------------------

std::optional<FuseResult> Fuser::FuseJoin(const JoinOp& j1, const JoinOp& j2) {
  if (j1.join_type() != j2.join_type()) return Reject("join types differ");
  auto left = Fuse(j1.left(), j2.left());
  if (!left.has_value()) return std::nullopt;
  auto right = Fuse(j1.right(), j2.right());
  if (!right.has_value()) return std::nullopt;

  ColumnMap mapping = left->mapping;
  if (!MergeMaps(&mapping, right->mapping)) {
    return Reject("conflicting column mappings between join sides");
  }

  ExprPtr c1 = Simplify(j1.condition());
  ExprPtr c2m = Simplify(ApplyMap(mapping, j2.condition()));
  if (!ExprEquivalent(c1, c2m)) {
    return Reject("join conditions differ modulo mapping");
  }

  // Semi and left joins do not output (or NULL-extend) right-side rows, so
  // a non-exact right fusion would change the match sets / extension rows.
  // Require exact right fusion for them; inner joins take the general form.
  bool right_exact = IsTrueLiteral(right->left_filter) &&
                     IsTrueLiteral(right->right_filter);
  if ((j1.join_type() == JoinType::kSemi ||
       j1.join_type() == JoinType::kLeft) &&
      !right_exact) {
    return Reject("non-exact right fusion under semi/left join");
  }
  // Similarly, left joins with a non-exact *left* fusion would NULL-extend
  // rows that one input never contained; keep it sound.
  bool left_exact =
      IsTrueLiteral(left->left_filter) && IsTrueLiteral(left->right_filter);
  if (j1.join_type() == JoinType::kLeft && !left_exact) {
    return Reject("non-exact left fusion under left join");
  }

  PlanPtr fused =
      std::make_shared<JoinOp>(j1.join_type(), left->plan, right->plan, c1);
  ExprPtr l = MakeConjunction(left->left_filter, right->left_filter);
  ExprPtr r = MakeConjunction(left->right_filter, right->right_filter);
  return FuseResult{std::move(fused), std::move(mapping), std::move(l),
                    std::move(r)};
}

// --- Section III.E: aggregations -------------------------------------------

std::optional<FuseResult> Fuser::FuseAggregate(const AggregateOp& g1,
                                               const AggregateOp& g2) {
  auto sub = Fuse(g1.child(0), g2.child(0));
  if (!sub.has_value()) return std::nullopt;
  // Grouping columns must be equivalent modulo the mapping.
  std::vector<ColumnId> k2_mapped;
  k2_mapped.reserve(g2.group_by().size());
  for (ColumnId k : g2.group_by()) {
    k2_mapped.push_back(ApplyMap(sub->mapping, k));
  }
  if (!SameColumnSet(g1.group_by(), k2_mapped)) {
    return Reject("differing group keys");
  }

  const ExprPtr& l = sub->left_filter;
  const ExprPtr& r = sub->right_filter;
  bool l_true = IsTrueLiteral(l);
  bool r_true = IsTrueLiteral(r);

  // Tighten every aggregate's mask with the matching compensating filter.
  std::vector<AggregateItem> fused_aggs;
  fused_aggs.reserve(g1.aggregates().size() + g2.aggregates().size() + 2);
  struct Entry {
    AggFunc func;
    bool distinct;
    std::string arg_fp;
    std::string mask_fp;
    ColumnId id;
  };
  std::vector<Entry> entries;
  auto add_item = [&](const AggregateItem& item) {
    entries.push_back({item.func, item.distinct, FpOrEmpty(item.arg),
                       MaskFp(item.mask), item.id});
    fused_aggs.push_back(item);
  };
  for (const AggregateItem& a1 : g1.aggregates()) {
    AggregateItem item = a1;
    if (!l_true) {
      item.mask = item.mask == nullptr ? l : MakeConjunction(item.mask, l);
    }
    add_item(item);
  }
  ColumnMap mapping = sub->mapping;
  for (const AggregateItem& a2 : g2.aggregates()) {
    AggregateItem item = a2;
    item.arg = a2.arg == nullptr ? nullptr : ApplyMap(sub->mapping, a2.arg);
    ExprPtr mask =
        a2.mask == nullptr ? nullptr : ApplyMap(sub->mapping, a2.mask);
    if (!r_true) {
      mask = mask == nullptr ? r : MakeConjunction(mask, r);
    }
    item.mask = mask;
    // Reuse an existing identical aggregate when available.
    std::string arg_fp = FpOrEmpty(item.arg);
    std::string mask_fp = MaskFp(item.mask);
    const Entry* found = nullptr;
    for (const Entry& e : entries) {
      if (e.func == item.func && e.distinct == item.distinct &&
          e.arg_fp == arg_fp && e.mask_fp == mask_fp) {
        found = &e;
        break;
      }
    }
    if (found != nullptr) {
      mapping[a2.id] = found->id;
    } else {
      add_item(item);
      mapping[a2.id] = item.id;
    }
  }

  // Compensating aggregates (non-scalar only): a group must disappear from a
  // side's reconstruction when that side contributed no rows to it.
  ExprPtr comp_l = TrueExpr();
  ExprPtr comp_r = TrueExpr();
  bool scalar = g1.IsScalar();
  auto add_comp = [&](const ExprPtr& guard, const char* name) -> ExprPtr {
    // Reuse an existing COUNT(*) with the same mask if present.
    std::string mask_fp = MaskFp(guard);
    for (const Entry& e : entries) {
      if (e.func == AggFunc::kCountStar && !e.distinct && e.arg_fp.empty() &&
          e.mask_fp == mask_fp) {
        return eb::Gt(eb::Col(e.id, DataType::kInt64), eb::Int(0));
      }
    }
    AggregateItem count{ctx_->NextId(), name, AggFunc::kCountStar, nullptr,
                        guard, false};
    add_item(count);
    return eb::Gt(eb::Col(count.id, DataType::kInt64), eb::Int(0));
  };
  if (!scalar && !l_true) comp_l = add_comp(l, "$fuse_count_l");
  if (!scalar && !r_true) comp_r = add_comp(r, "$fuse_count_r");

  PlanPtr fused = std::make_shared<AggregateOp>(sub->plan, g1.group_by(),
                                                std::move(fused_aggs));
  return FuseResult{std::move(fused), std::move(mapping), std::move(comp_l),
                    std::move(comp_r)};
}

// --- Section III.F: MarkDistinct -------------------------------------------

PlanPtr Fuser::AddMarkDistinct(const PlanPtr& input, ColumnId marker,
                               const std::string& marker_name,
                               const std::vector<ColumnId>& distinct_columns,
                               const ExprPtr& guard) {
  if (guard == nullptr || IsTrueLiteral(guard)) {
    return std::make_shared<MarkDistinctOp>(input, marker, marker_name,
                                            distinct_columns);
  }
  // Append a guard column m := guard and include it in the distinct set, so
  // the marker distinguishes "first time seen among guarded rows".
  std::vector<NamedExpr> exprs;
  exprs.reserve(input->schema().num_columns() + 1);
  for (const ColumnInfo& c : input->schema().columns()) {
    exprs.push_back({c.id, c.name, Expr::MakeColumnRef(c.id, c.type)});
  }
  ColumnId guard_col = ctx_->NextId();
  exprs.push_back({guard_col, marker_name + "$guard", guard});
  PlanPtr projected =
      std::make_shared<ProjectOp>(input, std::move(exprs));
  std::vector<ColumnId> cols = distinct_columns;
  cols.push_back(guard_col);
  return std::make_shared<MarkDistinctOp>(projected, marker, marker_name,
                                          std::move(cols));
}

std::optional<FuseResult> Fuser::FuseMarkDistinct(const MarkDistinctOp& m1,
                                                  const MarkDistinctOp& m2) {
  auto sub = Fuse(m1.child(0), m2.child(0));
  if (!sub.has_value()) return std::nullopt;
  int marker1_idx = m1.schema().IndexOf(m1.marker());
  int marker2_idx = m2.schema().IndexOf(m2.marker());
  std::vector<ColumnId> d2;
  d2.reserve(m2.distinct_columns().size());
  for (ColumnId c : m2.distinct_columns()) {
    d2.push_back(ApplyMap(sub->mapping, c));
  }
  PlanPtr inner = AddMarkDistinct(sub->plan, m2.marker(),
                                  m2.schema().column(marker2_idx).name, d2,
                                  sub->right_filter);
  PlanPtr outer = AddMarkDistinct(inner, m1.marker(),
                                  m1.schema().column(marker1_idx).name,
                                  m1.distinct_columns(), sub->left_filter);
  ColumnMap mapping = sub->mapping;
  mapping[m2.marker()] = m2.marker();
  return FuseResult{std::move(outer), std::move(mapping),
                    std::move(sub->left_filter),
                    std::move(sub->right_filter)};
}

// --- Section III.G: defaults and mismatched roots ---------------------------

std::optional<FuseResult> Fuser::FuseDefault(const PlanPtr& p1,
                                             const PlanPtr& p2) {
  auto sub = Fuse(p1->child(0), p2->child(0));
  if (!sub.has_value()) return std::nullopt;
  if (!sub->Exact()) {
    return Reject("non-exact child fusion under pass-through root");
  }
  // Check operator parameters are equivalent modulo the mapping.
  switch (p1->kind()) {
    case OpKind::kEnforceSingleRow:
      break;
    case OpKind::kLimit:
      if (Cast<LimitOp>(*p1).limit() != Cast<LimitOp>(*p2).limit()) {
        return Reject("limit values differ");
      }
      break;
    case OpKind::kSort: {
      const auto& s1 = Cast<SortOp>(*p1);
      const auto& s2 = Cast<SortOp>(*p2);
      if (s1.keys().size() != s2.keys().size()) {
        return Reject("sort keys differ");
      }
      for (size_t i = 0; i < s1.keys().size(); ++i) {
        if (s1.keys()[i].column !=
                ApplyMap(sub->mapping, s2.keys()[i].column) ||
            s1.keys()[i].ascending != s2.keys()[i].ascending) {
          return Reject("sort keys differ");
        }
      }
      break;
    }
    case OpKind::kScan:
    case OpKind::kFilter:
    case OpKind::kProject:
    case OpKind::kJoin:
    case OpKind::kAggregate:
    case OpKind::kWindow:
    case OpKind::kMarkDistinct:
    case OpKind::kUnionAll:
    case OpKind::kValues:
    case OpKind::kApply:
    case OpKind::kSpool:
      return std::nullopt;  // these kinds have dedicated Fuse* handlers
  }
  PlanPtr fused = p1->CloneWithChildren({sub->plan});
  return FuseResult{std::move(fused), std::move(sub->mapping), TrueExpr(),
                    TrueExpr()};
}

std::optional<FuseResult> Fuser::FuseMismatched(const PlanPtr& p1,
                                                const PlanPtr& p2) {
  // 1. MarkDistinct only appends a column: skip it, fuse the child, re-add.
  if (p1->kind() == OpKind::kMarkDistinct) {
    const auto& md = Cast<MarkDistinctOp>(*p1);
    auto sub = Fuse(p1->child(0), p2);
    if (sub.has_value()) {
      int idx = md.schema().IndexOf(md.marker());
      PlanPtr fused =
          AddMarkDistinct(sub->plan, md.marker(), md.schema().column(idx).name,
                          md.distinct_columns(), sub->left_filter);
      return FuseResult{std::move(fused), std::move(sub->mapping),
                        std::move(sub->left_filter),
                        std::move(sub->right_filter)};
    }
  }
  if (p2->kind() == OpKind::kMarkDistinct) {
    const auto& md = Cast<MarkDistinctOp>(*p2);
    auto sub = Fuse(p1, p2->child(0));
    if (sub.has_value()) {
      int idx = md.schema().IndexOf(md.marker());
      std::vector<ColumnId> d2;
      d2.reserve(md.distinct_columns().size());
      for (ColumnId c : md.distinct_columns()) {
        d2.push_back(ApplyMap(sub->mapping, c));
      }
      PlanPtr fused =
          AddMarkDistinct(sub->plan, md.marker(), md.schema().column(idx).name,
                          d2, sub->right_filter);
      ColumnMap mapping = std::move(sub->mapping);
      mapping[md.marker()] = md.marker();
      return FuseResult{std::move(fused), std::move(mapping),
                        std::move(sub->left_filter),
                        std::move(sub->right_filter)};
    }
  }
  // 2. One side has a Filter root: manufacture a trivial TRUE filter.
  if (p1->kind() == OpKind::kFilter && p2->kind() != OpKind::kFilter) {
    PlanPtr wrapped = std::make_shared<FilterOp>(p2, TrueExpr());
    return FuseFilter(Cast<FilterOp>(*p1), Cast<FilterOp>(*wrapped));
  }
  if (p2->kind() == OpKind::kFilter && p1->kind() != OpKind::kFilter) {
    PlanPtr wrapped = std::make_shared<FilterOp>(p1, TrueExpr());
    return FuseFilter(Cast<FilterOp>(*wrapped), Cast<FilterOp>(*p2));
  }
  // 3. One side has a Project root: manufacture an identity projection.
  if (p1->kind() == OpKind::kProject && p2->kind() != OpKind::kProject) {
    PlanPtr wrapped = ProjectOp::MakeIdentity(p2);
    return FuseProject(Cast<ProjectOp>(*p1), Cast<ProjectOp>(*wrapped));
  }
  if (p2->kind() == OpKind::kProject && p1->kind() != OpKind::kProject) {
    PlanPtr wrapped = ProjectOp::MakeIdentity(p1);
    return FuseProject(Cast<ProjectOp>(*wrapped), Cast<ProjectOp>(*p2));
  }
  std::string reason = "non-fusable root pair (";
  reason += OpKindName(p1->kind());
  reason += " vs ";
  reason += OpKindName(p2->kind());
  reason += ")";
  return Reject(std::move(reason));
}

}  // namespace fusiondb
