#include "fusion/fuse_across.h"

#include <utility>

#include "analysis/semantic_ledger.h"
#include "expr/simplifier.h"
#include "plan/plan_fingerprint.h"

namespace fusiondb {

namespace {

/// Conjunction with nullptr-as-TRUE normalization on both sides.
ExprPtr AndFilters(const ExprPtr& a, const ExprPtr& b) {
  bool a_true = a == nullptr || IsTrueLiteral(a);
  bool b_true = b == nullptr || IsTrueLiteral(b);
  if (a_true) return b_true ? nullptr : b;
  if (b_true) return a;
  return Expr::MakeAnd({a, b});
}

}  // namespace

std::optional<size_t> CrossPlanFuser::TryAdd(const PlanPtr& plan) {
  uint64_t fingerprint = PlanFingerprint(plan);
  if (plan_ == nullptr) {
    plan_ = plan;
    consumers_.push_back({nullptr, {}});
    members_.push_back(plan);
    member_fingerprints_.push_back(fingerprint);
    return 0;
  }
  // Identical-member overlay: the fingerprint is renumbering-stable, so a
  // matching member computes the same relation and the new plan's output
  // column i is the member's output column i. The new consumer reuses the
  // member's compensating filter and routes positionally through the
  // member's mapping — no Fuse call, and no operator-kind restriction.
  for (size_t j = 0; j < members_.size(); ++j) {
    if (member_fingerprints_[j] != fingerprint) continue;
    const Schema& member_schema = members_[j]->schema();
    const Schema& plan_schema = plan->schema();
    ColumnMap overlay;
    for (size_t i = 0; i < plan_schema.num_columns(); ++i) {
      overlay[plan_schema.column(i).id] =
          ApplyMap(consumers_[j].mapping, member_schema.column(i).id);
    }
    consumers_.push_back({consumers_[j].filter, std::move(overlay)});
    members_.push_back(plan);
    member_fingerprints_.push_back(fingerprint);
    return consumers_.size() - 1;
  }
  std::optional<FuseResult> fused = fuser_.Fuse(plan_, plan);
  if (!fused.has_value()) return std::nullopt;
  plan_ = fused->plan;
  SemanticLedger* ledger = ctx_->semantics();
  // Existing consumers keep their mappings (the fused plan retains all of
  // the previous shared plan's output columns) and tighten their filters
  // with this step's left compensation. Each tightened filter must imply
  // the one it replaces — conjoining can only narrow; an accumulation bug
  // (replacing instead of conjoining) would break this, so record the
  // obligation for the semantic verifier when a ledger is attached.
  for (CrossConsumer& c : consumers_) {
    ExprPtr before = c.filter;
    c.filter = AndFilters(c.filter, fused->left_filter);
    if (ledger != nullptr) {
      ledger->AddImplication(plan_, c.filter, before, "CrossPlanFuser");
    }
  }
  consumers_.push_back(
      {AndFilters(nullptr, fused->right_filter), std::move(fused->mapping)});
  if (ledger != nullptr) {
    ledger->AddImplication(plan_, consumers_.back().filter,
                           fused->right_filter, "CrossPlanFuser");
  }
  members_.push_back(plan);
  member_fingerprints_.push_back(fingerprint);
  return consumers_.size() - 1;
}

bool CrossPlanFuser::Exact() const {
  for (const CrossConsumer& c : consumers_) {
    if (c.filter != nullptr) return false;
  }
  return true;
}

std::optional<CrossFuseResult> FuseAcrossPlans(
    const std::vector<PlanPtr>& plans, PlanContext* ctx) {
  if (plans.empty()) return std::nullopt;
  CrossPlanFuser folder(ctx);
  for (const PlanPtr& plan : plans) {
    if (!folder.TryAdd(plan).has_value()) return std::nullopt;
  }
  return CrossFuseResult{folder.plan(), folder.consumers()};
}

}  // namespace fusiondb
