// Query fusion primitives — Section III of the paper.
//
// Fuse(P1, P2) either fails (the paper's ⊥, here std::nullopt) or returns a
// 4-tuple (P, M, L, R):
//   - P: the fused plan. Its schema contains all output columns of P1 and,
//     possibly, additional columns from P2 (plus compensating columns).
//   - M: mapping from P2's output columns to columns of P.
//   - L, R: compensating filter conditions over P's output such that
//       P1 == Project_{outCols(P1)}( Filter_L(P) )
//       P2 == Project_{M(outCols(P2))}( Filter_R(P) )
//
// Fusion requires no new operators (unlike Resin's ResinMap/ResinReduce):
// every fused result is ordinary relational algebra, so downstream rules
// keep composing with it.
#ifndef FUSIONDB_FUSION_FUSE_H_
#define FUSIONDB_FUSION_FUSE_H_

#include <optional>
#include <string>

#include "expr/column_map.h"
#include "plan/logical_plan.h"

namespace fusiondb {

struct FuseResult {
  PlanPtr plan;
  ColumnMap mapping;
  ExprPtr left_filter;   // L
  ExprPtr right_filter;  // R

  /// True when both compensating filters are TRUE — the fused plan computes
  /// exactly both inputs (the precondition of GroupByJoinToWindow's simple
  /// form).
  bool Exact() const;
};

/// Implements the recursive Fuse procedure. Holds the PlanContext used to
/// mint compensating columns (tag/marker/count columns).
class Fuser {
 public:
  explicit Fuser(PlanContext* ctx) : ctx_(ctx) {}

  /// Fuse(P1, P2); std::nullopt is the paper's ⊥. When the PlanContext
  /// carries an OptimizerTrace, every recursive invocation is recorded as a
  /// FusionStep with either the Section III case that applied or a
  /// structured ⊥ reason.
  std::optional<FuseResult> Fuse(const PlanPtr& p1, const PlanPtr& p2);

 private:
  /// The recursive dispatch (the untraced body of Fuse); the public Fuse
  /// wraps it with per-step trace bookkeeping.
  std::optional<FuseResult> FuseImpl(const PlanPtr& p1, const PlanPtr& p2);

  /// Record why the current fusion attempt failed — the structured ⊥
  /// reason surfaced by the optimizer trace — and return ⊥.
  std::optional<FuseResult> Reject(std::string reason);

  /// Section III.A (table scans — the base case). Two scans of the same
  /// table fuse into one scan reading the union of their column sets; both
  /// compensating filters are TRUE.
  ///   before: Scan_T{a,b}   ,  Scan_T{b,c}
  ///   after:  P = Scan_T{a,b,c};  M = {b2→b, c2→c};  L = R = TRUE
  std::optional<FuseResult> FuseScan(const ScanOp& s1, const ScanOp& s2);

  /// Section III.A (constant relations, same base-case role as scans).
  /// Structurally identical Values nodes fuse into one; L = R = TRUE.
  ///   before: Values[rows]  ,  Values[rows]
  ///   after:  P = Values[rows];  M maps positionally;  L = R = TRUE
  std::optional<FuseResult> FuseValues(const PlanPtr& p1, const PlanPtr& p2);

  /// Section III.B (filters). Fuse the children, then filter on the
  /// disjunction of the two (remapped) predicates; each side's own
  /// predicate joins its child compensation conjunctively. Equivalent
  /// predicates short-circuit to a single filter with unchanged L/R.
  ///   before: σ_p1(C1)  ,  σ_p2(C2)
  ///   after:  P = σ_{p1 ∨ p2'}(Fuse(C1,C2));  L = L_c ∧ p1;  R = R_c ∧ p2'
  std::optional<FuseResult> FuseFilter(const FilterOp& f1, const FilterOp& f2);

  /// Section III.C (projections). Fuse the children and concatenate the
  /// assignment lists (remapping P2's through M); compensating filters pass
  /// through from the child fusion.
  ///   before: π_{e1..}(C1)  ,  π_{f1..}(C2)
  ///   after:  P = π_{e1.., f1'..}(Fuse(C1,C2));  L, R from the children
  std::optional<FuseResult> FuseProject(const ProjectOp& r1,
                                        const ProjectOp& r2);

  /// Section III.D (joins). Requires exact child fusions on both sides and
  /// equivalent join conditions modulo M; the fused join is re-derived over
  /// the fused inputs.
  ///   before: (A1 ⋈_c B1)  ,  (A2 ⋈_c' B2)   with c ≡ M(c')
  ///   after:  P = Fuse(A1,A2) ⋈_c Fuse(B1,B2);  L = R = TRUE
  std::optional<FuseResult> FuseJoin(const JoinOp& j1, const JoinOp& j2);

  /// Section III.E (aggregations — the paper's core case, built on
  /// Athena's per-aggregate masks). Same grouping keys modulo M; the fused
  /// GroupBy carries both aggregate lists with each aggregate's mask
  /// AND-ed with its side's compensating filter, plus compensating
  /// COUNT(*) aggregates (cnt_L, cnt_R) so each side can be restored by
  /// filtering groups where its count is positive.
  ///   before: γ_{k}[aggs1](C1)  ,  γ_{k'}[aggs2](C2)
  ///   after:  P = γ_{k}[aggs1@L, aggs2'@R, cnt_L, cnt_R](Fuse(C1,C2));
  ///           L = (cnt_L > 0);  R = (cnt_R > 0)
  std::optional<FuseResult> FuseAggregate(const AggregateOp& g1,
                                          const AggregateOp& g2);

  /// Section III.F (MarkDistinct, the lowering target of distinct
  /// aggregates). Same distinct-key set modulo M; when the child fusion is
  /// inexact the marker must be guarded so "first seen" is evaluated within
  /// each side's subset (see AddMarkDistinct).
  ///   before: MD_{keys}(C1)  ,  MD_{keys'}(C2)
  ///   after:  P = MD_{keys∪guard}(Fuse(C1,C2)) per side;  L, R from child
  std::optional<FuseResult> FuseMarkDistinct(const MarkDistinctOp& m1,
                                             const MarkDistinctOp& m2);

  /// Section III.G (default case). Parameter-compatible unary operators
  /// over an *exact* child fusion (EnforceSingleRow, Limit, Sort) pass
  /// through: the fused operator is re-instantiated over the fused child.
  ///   before: op(C1)  ,  op(C2)   with Fuse(C1,C2) exact
  ///   after:  P = op(Fuse(C1,C2));  L = R = TRUE
  std::optional<FuseResult> FuseDefault(const PlanPtr& p1, const PlanPtr& p2);

  /// Section III.G (root-mismatch compensation). When the roots differ,
  /// skip a MarkDistinct on one side (its marker column is additive), or
  /// manufacture a trivial σ_TRUE / identity-π root so a structural case
  /// applies.
  ///   before: MD(C1)  ,  C2         (or σ/π vs bare child)
  ///   after:  fuse C1 with C2, re-adding the skipped operator on top
  std::optional<FuseResult> FuseMismatched(const PlanPtr& p1,
                                           const PlanPtr& p2);

  /// Re-adds a MarkDistinct above `input`. When `guard` is not TRUE, a
  /// boolean guard column computed from it is appended (via projection) and
  /// included in the distinct set, so the marker distinguishes first-seen
  /// within the guarded subset (the III.F construction).
  PlanPtr AddMarkDistinct(const PlanPtr& input, ColumnId marker,
                          const std::string& marker_name,
                          const std::vector<ColumnId>& distinct_columns,
                          const ExprPtr& guard);

  PlanContext* ctx_;

  /// ⊥ reason set by Reject for the innermost failing case; consumed (and
  /// reset) by the public Fuse wrapper when tracing is active.
  std::string last_reason_;
};

}  // namespace fusiondb

#endif  // FUSIONDB_FUSION_FUSE_H_
