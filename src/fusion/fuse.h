// Query fusion primitives — Section III of the paper.
//
// Fuse(P1, P2) either fails (the paper's ⊥, here std::nullopt) or returns a
// 4-tuple (P, M, L, R):
//   - P: the fused plan. Its schema contains all output columns of P1 and,
//     possibly, additional columns from P2 (plus compensating columns).
//   - M: mapping from P2's output columns to columns of P.
//   - L, R: compensating filter conditions over P's output such that
//       P1 == Project_{outCols(P1)}( Filter_L(P) )
//       P2 == Project_{M(outCols(P2))}( Filter_R(P) )
//
// Fusion requires no new operators (unlike Resin's ResinMap/ResinReduce):
// every fused result is ordinary relational algebra, so downstream rules
// keep composing with it.
#ifndef FUSIONDB_FUSION_FUSE_H_
#define FUSIONDB_FUSION_FUSE_H_

#include <optional>

#include "expr/column_map.h"
#include "plan/logical_plan.h"

namespace fusiondb {

struct FuseResult {
  PlanPtr plan;
  ColumnMap mapping;
  ExprPtr left_filter;   // L
  ExprPtr right_filter;  // R

  /// True when both compensating filters are TRUE — the fused plan computes
  /// exactly both inputs (the precondition of GroupByJoinToWindow's simple
  /// form).
  bool Exact() const;
};

/// Implements the recursive Fuse procedure. Holds the PlanContext used to
/// mint compensating columns (tag/marker/count columns).
class Fuser {
 public:
  explicit Fuser(PlanContext* ctx) : ctx_(ctx) {}

  /// Fuse(P1, P2); std::nullopt is the paper's ⊥.
  std::optional<FuseResult> Fuse(const PlanPtr& p1, const PlanPtr& p2);

 private:
  std::optional<FuseResult> FuseScan(const ScanOp& s1, const ScanOp& s2);
  std::optional<FuseResult> FuseValues(const PlanPtr& p1, const PlanPtr& p2);
  std::optional<FuseResult> FuseFilter(const FilterOp& f1, const FilterOp& f2);
  std::optional<FuseResult> FuseProject(const ProjectOp& r1,
                                        const ProjectOp& r2);
  std::optional<FuseResult> FuseJoin(const JoinOp& j1, const JoinOp& j2);
  std::optional<FuseResult> FuseAggregate(const AggregateOp& g1,
                                          const AggregateOp& g2);
  std::optional<FuseResult> FuseMarkDistinct(const MarkDistinctOp& m1,
                                             const MarkDistinctOp& m2);
  /// Default fusion for parameter-compatible unary operators whose child
  /// fusion is exact (EnforceSingleRow, Limit, Sort) — Section III.G.
  std::optional<FuseResult> FuseDefault(const PlanPtr& p1, const PlanPtr& p2);
  /// Root-mismatch compensation (Section III.G): skip MarkDistinct on one
  /// side, or manufacture a trivial Filter/Project.
  std::optional<FuseResult> FuseMismatched(const PlanPtr& p1,
                                           const PlanPtr& p2);

  /// Re-adds a MarkDistinct above `input`. When `guard` is not TRUE, a
  /// boolean guard column computed from it is appended (via projection) and
  /// included in the distinct set, so the marker distinguishes first-seen
  /// within the guarded subset (the III.F construction).
  PlanPtr AddMarkDistinct(const PlanPtr& input, ColumnId marker,
                          const std::string& marker_name,
                          const std::vector<ColumnId>& distinct_columns,
                          const ExprPtr& guard);

  PlanContext* ctx_;
};

}  // namespace fusiondb

#endif  // FUSIONDB_FUSION_FUSE_H_
