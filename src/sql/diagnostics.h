// SQL diagnostics: typed errors carrying byte offsets into the query text.
//
// The taxonomy mirrors the plan verifier's (analysis/plan_verifier.h):
// every diagnostic carries a bracketed [sql-*] tag plus a StatusCode —
// kInvalidArgument for syntax errors, kPlanError for name-resolution and
// structural binding errors, kTypeError for expression typing — so SQL
// front-end failures classify exactly like the corresponding executor and
// verifier failures on hand-built plans.
#ifndef FUSIONDB_SQL_DIAGNOSTICS_H_
#define FUSIONDB_SQL_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace fusiondb::sql {

struct SqlDiagnostic {
  StatusCode code = StatusCode::kInvalidArgument;
  std::string message;  // starts with the [sql-*] tag
  size_t offset = 0;    // byte offset into the SQL text
};

/// 1-based line/column of a byte offset within `sql`.
struct SqlPosition {
  int line = 1;
  int column = 1;
};
SqlPosition PositionOf(const std::string& sql, size_t offset);

/// Renders one diagnostic as a compiler-style snippet:
///
///   sql:1:8: [sql-unknown-column] no column named 'regio'
///     SELECT regio FROM orders
///            ^
std::string FormatDiagnostic(const std::string& sql, const SqlDiagnostic& d);

/// First diagnostic as a Status (OK when the list is empty). The message
/// carries the "line:column" position so callers that only see the Status
/// still get the location.
Status DiagnosticsToStatus(const std::string& sql,
                           const std::vector<SqlDiagnostic>& diagnostics);

}  // namespace fusiondb::sql

#endif  // FUSIONDB_SQL_DIAGNOSTICS_H_
