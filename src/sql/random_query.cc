#include "sql/random_query.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace fusiondb::sql {
namespace {

/// One column visible in the generated query's FROM scope, with enough
/// provenance to sample literals for it from the value pool.
struct ScopeCol {
  std::string alias;   // table alias in the query
  std::string table;   // catalog table name (for pool lookup)
  int index = 0;       // column index within the table
  std::string name;
  DataType type = DataType::kInt64;

  std::string Ref() const { return alias + "." + name; }
};

class Generator {
 public:
  Generator(const Catalog& catalog, const ValuePool& pool,
            std::mt19937_64& rng)
      : catalog_(catalog), pool_(pool), rng_(rng) {}

  FuzzQuerySpec Generate() {
    FuzzQuerySpec spec = GenerateCore();
    if (Chance(0.15)) {
      // Second UNION ALL branch: same FROM/SELECT shape (so output arity and
      // types line up positionally), fresh WHERE literals.
      auto branch = std::make_shared<FuzzQuerySpec>(spec);
      branch->limit = -1;
      RegenerateWhere(branch.get());
      spec.union_branch = std::move(branch);
    }
    if (Chance(0.4)) spec.limit = 1 + static_cast<int64_t>(Uniform(50));
    return spec;
  }

 private:
  // --- randomness helpers -------------------------------------------------

  size_t Uniform(size_t n) {  // in [0, n)
    return n == 0 ? 0 : static_cast<size_t>(rng_() % n);
  }
  bool Chance(double p) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < p;
  }
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

  // --- catalog / pool helpers ---------------------------------------------

  std::vector<std::string> PooledTables() const {
    std::vector<std::string> names;
    for (const auto& [name, rows] : pool_.rows) {
      if (!rows.empty()) names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  /// Samples a non-NULL value of `col`'s column from the pool; returns false
  /// when every sampled row is NULL there.
  bool SampleLiteral(const ScopeCol& col, Value* out) {
    auto it = pool_.rows.find(col.table);
    if (it == pool_.rows.end() || it->second.empty()) return false;
    const auto& rows = it->second;
    for (size_t attempt = 0; attempt < rows.size(); ++attempt) {
      const auto& row = rows[Uniform(rows.size())];
      if (col.index < static_cast<int>(row.size()) &&
          !row[col.index].is_null()) {
        *out = row[col.index];
        return true;
      }
    }
    return false;
  }

  static bool NumericArith(DataType t) {
    // Arithmetic only on int64/float64: date +/- int would change the
    // expression's type away from the column's, breaking CASE typing.
    return t == DataType::kInt64 || t == DataType::kFloat64;
  }

  // --- query assembly -----------------------------------------------------

  FuzzQuerySpec GenerateCore() {
    FuzzQuerySpec spec;
    scope_.clear();
    std::vector<std::string> tables = PooledTables();
    spec.from_table = Pick(tables);
    spec.from_alias = "t0";
    AddTableToScope(spec.from_table, spec.from_alias);

    size_t num_joins = Uniform(3);  // 0..2
    for (size_t j = 0; j < num_joins; ++j) {
      FuzzJoin join;
      if (!GenerateJoin(tables, "t" + std::to_string(j + 1), &join)) break;
      AddTableToScope(join.table, join.alias);
      spec.joins.push_back(std::move(join));
    }

    size_t num_where = Uniform(4);  // 0..3 conjuncts
    for (size_t w = 0; w < num_where; ++w) {
      spec.where.push_back(GeneratePredicate());
    }

    if (Chance(0.4)) {
      GenerateAggregated(&spec);
    } else {
      size_t num_items = 1 + Uniform(4);
      for (size_t s = 0; s < num_items; ++s) {
        spec.select.push_back(GenerateSelectExpr());
      }
    }
    return spec;
  }

  void AddTableToScope(const std::string& table_name,
                       const std::string& alias) {
    auto table = catalog_.GetTable(table_name);
    if (!table.ok()) return;
    const auto& cols = (*table)->columns();
    for (size_t i = 0; i < cols.size(); ++i) {
      scope_.push_back({alias, table_name, static_cast<int>(i), cols[i].name,
                        cols[i].type});
    }
  }

  /// FK-style join: find a table with a single-column primary key whose key
  /// type matches some in-scope column (preferring *_sk columns, which are
  /// the TPC-DS surrogate keys), and join on equality against that key. This
  /// keeps the join bounded by the probe side's cardinality.
  bool GenerateJoin(const std::vector<std::string>& tables,
                    const std::string& alias, FuzzJoin* join) {
    std::vector<std::string> shuffled = tables;
    std::shuffle(shuffled.begin(), shuffled.end(), rng_);
    for (const auto& name : shuffled) {
      auto table = catalog_.GetTable(name);
      if (!table.ok() || (*table)->primary_key().size() != 1) continue;
      int pk = (*table)->primary_key()[0];
      const TableColumn& key = (*table)->columns()[pk];
      std::vector<const ScopeCol*> candidates;
      for (const ScopeCol& col : scope_) {
        if (col.type != key.type) continue;
        bool sk_like = col.name.size() > 3 &&
                       col.name.compare(col.name.size() - 3, 3, "_sk") == 0;
        if (sk_like || col.name == key.name) candidates.push_back(&col);
      }
      if (candidates.empty()) continue;
      const ScopeCol* probe = Pick(candidates);
      join->table = name;
      join->alias = alias;
      join->left = Chance(0.25);
      join->condition.text = probe->Ref() + " = " + alias + "." + key.name;
      join->condition.aliases = {probe->alias, alias};
      return true;
    }
    return false;
  }

  FuzzClause GeneratePredicate() {
    const ScopeCol& col = Pick(scope_);
    FuzzClause clause;
    clause.aliases = {col.alias};
    Value lit;
    switch (Uniform(5)) {
      case 0: {  // column vs column (same type, same or different table)
        std::vector<const ScopeCol*> peers;
        for (const ScopeCol& other : scope_) {
          if (other.type == col.type &&
              (other.alias != col.alias || other.name != col.name)) {
            peers.push_back(&other);
          }
        }
        if (!peers.empty()) {
          const ScopeCol* peer = Pick(peers);
          clause.text = col.Ref() + " " + PickCompareOp() + " " + peer->Ref();
          clause.aliases.push_back(peer->alias);
          return clause;
        }
        break;  // fall through to literal compare
      }
      case 1: {  // BETWEEN two sampled literals
        Value lo, hi;
        if (SampleLiteral(col, &lo) && SampleLiteral(col, &hi)) {
          if (lo.Compare(hi) > 0) std::swap(lo, hi);
          clause.text = col.Ref() + (Chance(0.2) ? " NOT BETWEEN " :
                                                   " BETWEEN ") +
                        SqlLiteral(lo) + " AND " + SqlLiteral(hi);
          return clause;
        }
        break;
      }
      case 2: {  // IN list of sampled literals
        std::vector<std::string> items;
        for (size_t k = 1 + Uniform(4); k > 0; --k) {
          if (SampleLiteral(col, &lit)) items.push_back(SqlLiteral(lit));
        }
        if (!items.empty()) {
          std::string list;
          for (size_t k = 0; k < items.size(); ++k) {
            if (k > 0) list += ", ";
            list += items[k];
          }
          clause.text = col.Ref() + (Chance(0.2) ? " NOT IN (" : " IN (") +
                        list + ")";
          return clause;
        }
        break;
      }
      case 3:  // IS [NOT] NULL
        clause.text =
            col.Ref() + (Chance(0.5) ? " IS NULL" : " IS NOT NULL");
        return clause;
      default:
        break;
    }
    // Default / fallback: compare against a sampled literal.
    if (SampleLiteral(col, &lit)) {
      clause.text = col.Ref() + " " + PickCompareOp() + " " + SqlLiteral(lit);
    } else {
      clause.text = col.Ref() + " IS NOT NULL";
    }
    return clause;
  }

  std::string PickCompareOp() {
    static const char* kOps[] = {"=", "<>", "<", "<=", ">", ">="};
    return kOps[Uniform(6)];
  }

  void GenerateAggregated(FuzzQuerySpec* spec) {
    size_t num_groups = 1 + Uniform(2);
    for (size_t g = 0; g < num_groups; ++g) {
      const ScopeCol& col = Pick(scope_);
      // Duplicate group keys are legal SQL but add nothing; skip repeats.
      bool dup = false;
      for (const FuzzClause& existing : spec->group_by) {
        if (existing.text == col.Ref()) dup = true;
      }
      if (dup) continue;
      spec->group_by.push_back({col.Ref(), {col.alias}});
      spec->select.push_back({col.Ref(), {col.alias}});
    }
    size_t num_aggs = 1 + Uniform(3);
    std::vector<AggChoice> aggs;
    for (size_t a = 0; a < num_aggs; ++a) {
      aggs.push_back(GenerateAggregate());
      spec->select.push_back(aggs.back().clause);
    }
    // HAVING compares against a small integer literal, so only aggregates
    // with a numeric result are eligible (MIN/MAX of a string column keep
    // the string type and would fail to bind).
    std::vector<AggChoice> numeric_aggs;
    for (const AggChoice& a : aggs) {
      if (a.numeric) numeric_aggs.push_back(a);
    }
    if (!numeric_aggs.empty() && Chance(0.3)) {
      // HAVING over one of the aggregates (binder dedupes the repeated call
      // by fingerprint, so this also exercises aggregate reuse).
      const AggChoice& agg = Pick(numeric_aggs);
      spec->having.text = agg.clause.text + " " + PickCompareOp() + " " +
                          std::to_string(Uniform(6));
      spec->having.aliases = agg.clause.aliases;
    }
  }

  struct AggChoice {
    FuzzClause clause;
    bool numeric = true;  // result type comparable with an integer literal
  };

  AggChoice GenerateAggregate() {
    const ScopeCol& col = Pick(scope_);
    AggChoice agg;
    FuzzClause& clause = agg.clause;
    clause.aliases = {col.alias};
    switch (Uniform(6)) {
      case 0:
        clause.text = "COUNT(*)";
        clause.aliases.clear();
        break;
      case 1:
        clause.text = "COUNT(" + col.Ref() + ")";
        break;
      case 2:
        clause.text = "COUNT(DISTINCT " + col.Ref() + ")";
        break;
      case 3:
        if (NumericArith(col.type)) {
          clause.text = (Chance(0.5) ? "SUM(" : "AVG(") + col.Ref() + ")";
          break;
        }
        [[fallthrough]];
      default:
        clause.text = (Chance(0.5) ? "MIN(" : "MAX(") + col.Ref() + ")";
        agg.numeric = NumericArith(col.type);
        break;
    }
    return agg;
  }

  FuzzClause GenerateSelectExpr() {
    const ScopeCol& col = Pick(scope_);
    FuzzClause clause;
    clause.aliases = {col.alias};
    switch (Uniform(4)) {
      case 0:  // arithmetic against a small constant
        if (NumericArith(col.type)) {
          static const char* kOps[] = {" + ", " - ", " * "};
          clause.text = col.Ref() + kOps[Uniform(3)] +
                        std::to_string(1 + Uniform(9));
          return clause;
        }
        break;
      case 1: {  // NULL-handling CASE, type-preserving
        std::string fallback;
        if (col.type == DataType::kInt64) {
          fallback = "0";
        } else if (col.type == DataType::kFloat64) {
          fallback = "0.0";
        } else if (col.type == DataType::kString) {
          fallback = "''";
        }
        if (!fallback.empty()) {
          clause.text = "CASE WHEN " + col.Ref() + " IS NULL THEN " +
                        fallback + " ELSE " + col.Ref() + " END";
          return clause;
        }
        break;
      }
      case 2:  // negation
        if (NumericArith(col.type)) {
          clause.text = "-" + col.Ref();
          return clause;
        }
        break;
      default:
        break;
    }
    clause.text = col.Ref();
    return clause;
  }

  void RegenerateWhere(FuzzQuerySpec* spec) {
    // Rebuild the scope the core was generated under, then swap in fresh
    // predicates (the only part of a UNION branch allowed to differ).
    scope_.clear();
    AddTableToScope(spec->from_table, spec->from_alias);
    for (const FuzzJoin& join : spec->joins) {
      AddTableToScope(join.table, join.alias);
    }
    size_t num_where = Uniform(4);
    spec->where.clear();
    for (size_t w = 0; w < num_where; ++w) {
      spec->where.push_back(GeneratePredicate());
    }
  }

  const Catalog& catalog_;
  const ValuePool& pool_;
  std::mt19937_64& rng_;
  std::vector<ScopeCol> scope_;
};

void RenderCore(const FuzzQuerySpec& spec, bool alias_items,
                std::ostringstream* out) {
  *out << "SELECT ";
  for (size_t i = 0; i < spec.select.size(); ++i) {
    if (i > 0) *out << ", ";
    *out << spec.select[i].text;
    if (alias_items) *out << " AS c" << i;
  }
  *out << " FROM " << spec.from_table << " " << spec.from_alias;
  for (const FuzzJoin& join : spec.joins) {
    *out << (join.left ? " LEFT JOIN " : " JOIN ") << join.table << " "
         << join.alias << " ON " << join.condition.text;
  }
  for (size_t i = 0; i < spec.where.size(); ++i) {
    *out << (i == 0 ? " WHERE " : " AND ") << spec.where[i].text;
  }
  for (size_t i = 0; i < spec.group_by.size(); ++i) {
    *out << (i == 0 ? " GROUP BY " : ", ") << spec.group_by[i].text;
  }
  if (!spec.having.text.empty()) *out << " HAVING " << spec.having.text;
}

}  // namespace

std::string SqlLiteral(const Value& v) {
  if (v.is_null()) return "NULL";
  switch (v.type()) {
    case DataType::kBool:
      return v.bool_value() ? "TRUE" : "FALSE";
    case DataType::kInt64:
    case DataType::kDate:
      return std::to_string(v.int_value());
    case DataType::kFloat64: {
      // The lexer has no exponent syntax, so render plain fixed-point. The
      // exact decimal only shifts predicate selectivity — every mode sees
      // the identical literal text, so precision loss cannot cause
      // divergence.
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6f", v.double_value());
      return buf;
    }
    case DataType::kString: {
      std::string quoted = "'";
      for (char c : v.string_value()) {
        if (c == '\'') quoted += "''";
        quoted += c;
      }
      quoted += "'";
      return quoted;
    }
  }
  return "NULL";
}

std::string FuzzQuerySpec::ToSql() const {
  std::ostringstream out;
  RenderCore(*this, /*alias_items=*/true, &out);
  if (union_branch != nullptr) {
    out << " UNION ALL ";
    RenderCore(*union_branch, /*alias_items=*/false, &out);
  }
  // Total order over every output position: with LIMIT this pins exactly
  // which rows survive, so all optimizer modes and both executor backends
  // must return byte-identical results.
  for (size_t i = 0; i < select.size(); ++i) {
    out << (i == 0 ? " ORDER BY " : ", ") << (i + 1);
  }
  if (limit >= 0) out << " LIMIT " << limit;
  return out.str();
}

FuzzQuerySpec GenerateQuery(const Catalog& catalog, const ValuePool& pool,
                            std::mt19937_64& rng) {
  Generator gen(catalog, pool, rng);
  return gen.Generate();
}

namespace {

bool AliasReferenced(const FuzzQuerySpec& spec, const std::string& alias,
                     size_t ignore_join_index) {
  auto in = [&](const FuzzClause& c) {
    return std::find(c.aliases.begin(), c.aliases.end(), alias) !=
           c.aliases.end();
  };
  for (const auto& c : spec.select) {
    if (in(c)) return true;
  }
  for (const auto& c : spec.where) {
    if (in(c)) return true;
  }
  for (const auto& c : spec.group_by) {
    if (in(c)) return true;
  }
  if (in(spec.having)) return true;
  for (size_t j = 0; j < spec.joins.size(); ++j) {
    if (j != ignore_join_index && in(spec.joins[j].condition)) return true;
  }
  return false;
}

}  // namespace

std::vector<FuzzQuerySpec> Reductions(const FuzzQuerySpec& spec) {
  std::vector<FuzzQuerySpec> out;
  if (spec.union_branch != nullptr) {
    FuzzQuerySpec no_union = spec;
    no_union.union_branch = nullptr;
    out.push_back(std::move(no_union));
    FuzzQuerySpec branch_only = *spec.union_branch;
    branch_only.limit = spec.limit;
    out.push_back(std::move(branch_only));
  }
  if (spec.limit >= 0) {
    FuzzQuerySpec r = spec;
    r.limit = -1;
    out.push_back(std::move(r));
  }
  if (!spec.having.text.empty()) {
    FuzzQuerySpec r = spec;
    r.having = FuzzClause{};
    out.push_back(std::move(r));
  }
  for (size_t w = 0; w < spec.where.size(); ++w) {
    FuzzQuerySpec r = spec;
    r.where.erase(r.where.begin() + static_cast<ptrdiff_t>(w));
    out.push_back(std::move(r));
  }
  if (spec.union_branch != nullptr) {
    for (size_t w = 0; w < spec.union_branch->where.size(); ++w) {
      FuzzQuerySpec r = spec;
      r.union_branch = std::make_shared<FuzzQuerySpec>(*spec.union_branch);
      r.union_branch->where.erase(r.union_branch->where.begin() +
                                  static_cast<ptrdiff_t>(w));
      out.push_back(std::move(r));
    }
  }
  if (spec.select.size() > 1) {
    for (size_t s = 0; s < spec.select.size(); ++s) {
      FuzzQuerySpec r = spec;
      r.select.erase(r.select.begin() + static_cast<ptrdiff_t>(s));
      if (r.union_branch != nullptr &&
          s < r.union_branch->select.size()) {
        // Positional drop in both branches so UNION arity stays aligned.
        r.union_branch = std::make_shared<FuzzQuerySpec>(*r.union_branch);
        r.union_branch->select.erase(r.union_branch->select.begin() +
                                     static_cast<ptrdiff_t>(s));
      }
      out.push_back(std::move(r));
    }
  }
  // Drop a join when nothing references its alias. Only for non-UNION specs:
  // the branches share their FROM clause shape and would both need the edit.
  if (spec.union_branch == nullptr) {
    for (size_t j = spec.joins.size(); j > 0; --j) {
      size_t idx = j - 1;
      if (AliasReferenced(spec, spec.joins[idx].alias, idx)) continue;
      FuzzQuerySpec r = spec;
      r.joins.erase(r.joins.begin() + static_cast<ptrdiff_t>(idx));
      out.push_back(std::move(r));
    }
  }
  return out;
}

}  // namespace fusiondb::sql
