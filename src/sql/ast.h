// SQL parse tree. A deliberately small surface: exactly the dialect the
// engine can execute (SELECT with expressions, WHERE, GROUP BY + the five
// aggregate functions, HAVING, ORDER BY/LIMIT, INNER/LEFT joins, subqueries
// in FROM, UNION ALL). Every node keeps the byte offset of its first token
// so binder diagnostics can point at source positions.
#ifndef FUSIONDB_SQL_AST_H_
#define FUSIONDB_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "plan/logical_plan.h"

namespace fusiondb::sql {

enum class AstExprKind : uint8_t {
  kColumn,     // [qualifier.]name
  kIntLit,
  kFloatLit,
  kStringLit,
  kBoolLit,
  kNullLit,
  kCompare,    // children: [l, r]
  kArith,      // children: [l, r]
  kAnd,        // children: [l, r]
  kOr,         // children: [l, r]
  kNot,        // children: [operand]
  kIsNull,     // children: [operand]
  kInList,     // children: [operand, item...]
  kCase,       // children: [when1, then1, ..., else]
  kFuncCall,   // aggregate call; children: [arg] (empty for COUNT(*))
};

struct AstExpr;
using AstExprPtr = std::unique_ptr<AstExpr>;

struct AstExpr {
  AstExprKind kind = AstExprKind::kColumn;
  size_t offset = 0;

  std::string qualifier;  // kColumn: optional table alias
  std::string name;       // kColumn: column name; kFuncCall: function name
  int64_t int_value = 0;  // kIntLit / kBoolLit (0|1)
  double float_value = 0.0;
  std::string string_value;

  CompareOp compare_op = CompareOp::kEq;
  ArithOp arith_op = ArithOp::kAdd;
  bool distinct = false;  // kFuncCall: COUNT(DISTINCT x) etc.
  bool star = false;      // kFuncCall: COUNT(*)

  std::vector<AstExprPtr> children;
};

struct SelectItem {
  AstExprPtr expr;    // null for '*'
  std::string alias;  // empty when none given
  bool star = false;
  size_t offset = 0;
};

struct Statement;

/// One FROM entry: a base table or a parenthesized subquery, either with an
/// optional alias.
struct TableRef {
  std::string table;  // empty for subqueries
  std::string alias;  // defaults to the table name when empty
  std::unique_ptr<Statement> subquery;
  size_t offset = 0;
};

struct JoinClause {
  JoinType type = JoinType::kInner;
  TableRef ref;
  AstExprPtr condition;
  size_t offset = 0;
};

/// One SELECT core (no ORDER BY/LIMIT — those attach to the Statement so
/// they apply across UNION ALL branches, as in standard SQL).
struct SelectCore {
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  AstExprPtr where;
  std::vector<AstExprPtr> group_by;
  AstExprPtr having;
  size_t offset = 0;
};

struct OrderItem {
  AstExprPtr expr;  // output column name or 1-based position
  bool ascending = true;
};

/// A full statement: one or more UNION ALL branches plus the trailing
/// ORDER BY / LIMIT over the combined output.
struct Statement {
  std::vector<std::unique_ptr<SelectCore>> selects;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 == no LIMIT
  size_t offset = 0;
};

}  // namespace fusiondb::sql

#endif  // FUSIONDB_SQL_AST_H_
