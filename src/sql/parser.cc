#include "sql/parser.h"

#include <cctype>
#include <cstdlib>
#include <utility>

#include "sql/lexer.h"

namespace fusiondb::sql {

namespace {

/// Keywords that terminate clauses; these may not be used as bare aliases
/// (so `FROM t WHERE ...` never parses WHERE as t's alias).
bool IsReservedKeyword(const Token& t) {
  static const char* kReserved[] = {
      "SELECT", "FROM",  "WHERE", "GROUP", "BY",      "HAVING", "ORDER",
      "LIMIT",  "UNION", "ALL",   "JOIN",  "INNER",   "LEFT",   "OUTER",
      "ON",     "AS",    "AND",   "OR",    "NOT",     "IS",     "NULL",
      "TRUE",   "FALSE", "BETWEEN", "IN",  "CASE",    "WHEN",   "THEN",
      "ELSE",   "END",   "ASC",   "DESC",  "DISTINCT"};
  for (const char* k : kReserved) {
    if (t.IsKeyword(k)) return true;
  }
  return false;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::vector<SqlDiagnostic>* diag)
      : tokens_(std::move(tokens)), diag_(diag) {}

  std::unique_ptr<Statement> ParseStatement() {
    auto stmt = ParseQuery();
    if (stmt == nullptr) return nullptr;
    if (Peek().kind == TokenKind::kSemicolon) Advance();
    if (Peek().kind != TokenKind::kEof) {
      Error("expected end of statement, found " + Describe(Peek()));
      return nullptr;
    }
    return stmt;
  }

 private:
  // --- token plumbing ------------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool AtKeyword(const char* kw) const { return Peek().IsKeyword(kw); }
  bool EatKeyword(const char* kw) {
    if (!AtKeyword(kw)) return false;
    Advance();
    return true;
  }
  bool Eat(TokenKind kind) {
    if (Peek().kind != kind) return false;
    Advance();
    return true;
  }

  static std::string Describe(const Token& t) {
    if (t.kind == TokenKind::kIdent || t.kind == TokenKind::kInt ||
        t.kind == TokenKind::kFloat) {
      return "'" + t.text + "'";
    }
    return TokenKindName(t.kind);
  }

  void Error(const std::string& message) { ErrorAt(Peek().offset, message); }
  void ErrorAt(size_t offset, const std::string& message) {
    if (!failed_) {
      failed_ = true;
      diag_->push_back(
          {StatusCode::kInvalidArgument, "[sql-syntax] " + message, offset});
    }
  }

  bool ExpectKeyword(const char* kw) {
    if (EatKeyword(kw)) return true;
    Error(std::string("expected ") + kw + ", found " + Describe(Peek()));
    return false;
  }
  bool Expect(TokenKind kind) {
    if (Eat(kind)) return true;
    Error(std::string("expected ") + TokenKindName(kind) + ", found " +
          Describe(Peek()));
    return false;
  }

  // --- grammar -------------------------------------------------------------

  std::unique_ptr<Statement> ParseQuery() {
    auto stmt = std::make_unique<Statement>();
    stmt->offset = Peek().offset;
    auto first = ParseSelectCore();
    if (first == nullptr) return nullptr;
    stmt->selects.push_back(std::move(first));
    while (AtKeyword("UNION")) {
      Advance();
      if (!ExpectKeyword("ALL")) return nullptr;  // bag semantics only
      auto branch = ParseSelectCore();
      if (branch == nullptr) return nullptr;
      stmt->selects.push_back(std::move(branch));
    }
    if (AtKeyword("ORDER")) {
      Advance();
      if (!ExpectKeyword("BY")) return nullptr;
      do {
        OrderItem item;
        item.expr = ParseExpr();
        if (item.expr == nullptr) return nullptr;
        if (EatKeyword("DESC")) {
          item.ascending = false;
        } else {
          EatKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
      } while (Eat(TokenKind::kComma));
    }
    if (EatKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kInt) {
        Error("expected integer LIMIT, found " + Describe(Peek()));
        return nullptr;
      }
      stmt->limit = std::atoll(Advance().text.c_str());
    }
    return stmt;
  }

  std::unique_ptr<SelectCore> ParseSelectCore() {
    auto core = std::make_unique<SelectCore>();
    core->offset = Peek().offset;
    if (!ExpectKeyword("SELECT")) return nullptr;
    do {
      SelectItem item;
      item.offset = Peek().offset;
      if (Peek().kind == TokenKind::kStar) {
        Advance();
        item.star = true;
      } else {
        item.expr = ParseExpr();
        if (item.expr == nullptr) return nullptr;
        if (EatKeyword("AS")) {
          if (Peek().kind != TokenKind::kIdent) {
            Error("expected alias after AS, found " + Describe(Peek()));
            return nullptr;
          }
          item.alias = Advance().text;
        } else if (Peek().kind == TokenKind::kIdent &&
                   !IsReservedKeyword(Peek())) {
          item.alias = Advance().text;
        }
      }
      core->items.push_back(std::move(item));
    } while (Eat(TokenKind::kComma));

    if (!ExpectKeyword("FROM")) return nullptr;
    if (!ParseTableRef(&core->from)) return nullptr;
    while (AtKeyword("JOIN") || AtKeyword("INNER") || AtKeyword("LEFT")) {
      JoinClause join;
      join.offset = Peek().offset;
      if (EatKeyword("LEFT")) {
        EatKeyword("OUTER");
        join.type = JoinType::kLeft;
      } else {
        EatKeyword("INNER");
        join.type = JoinType::kInner;
      }
      if (!ExpectKeyword("JOIN")) return nullptr;
      if (!ParseTableRef(&join.ref)) return nullptr;
      if (!ExpectKeyword("ON")) return nullptr;
      join.condition = ParseExpr();
      if (join.condition == nullptr) return nullptr;
      core->joins.push_back(std::move(join));
    }
    if (EatKeyword("WHERE")) {
      core->where = ParseExpr();
      if (core->where == nullptr) return nullptr;
    }
    if (AtKeyword("GROUP")) {
      Advance();
      if (!ExpectKeyword("BY")) return nullptr;
      do {
        auto e = ParseExpr();
        if (e == nullptr) return nullptr;
        core->group_by.push_back(std::move(e));
      } while (Eat(TokenKind::kComma));
    }
    if (EatKeyword("HAVING")) {
      core->having = ParseExpr();
      if (core->having == nullptr) return nullptr;
    }
    return core;
  }

  bool ParseTableRef(TableRef* ref) {
    ref->offset = Peek().offset;
    if (Eat(TokenKind::kLParen)) {
      ref->subquery = ParseQuery();
      if (ref->subquery == nullptr) return false;
      if (!Expect(TokenKind::kRParen)) return false;
    } else if (Peek().kind == TokenKind::kIdent && !IsReservedKeyword(Peek())) {
      ref->table = Advance().text;
    } else {
      Error("expected table name or subquery, found " + Describe(Peek()));
      return false;
    }
    if (EatKeyword("AS")) {
      if (Peek().kind != TokenKind::kIdent) {
        Error("expected alias after AS, found " + Describe(Peek()));
        return false;
      }
      ref->alias = Advance().text;
    } else if (Peek().kind == TokenKind::kIdent && !IsReservedKeyword(Peek())) {
      ref->alias = Advance().text;
    }
    if (ref->table.empty() && ref->alias.empty()) {
      ErrorAt(ref->offset, "subquery in FROM requires an alias");
      return false;
    }
    return true;
  }

  // Precedence: OR < AND < NOT < predicate (comparison / IS NULL / BETWEEN /
  // IN) < additive < multiplicative < unary minus < primary.
  AstExprPtr ParseExpr() { return ParseOr(); }

  AstExprPtr MakeBinary(AstExprKind kind, size_t offset, AstExprPtr l,
                        AstExprPtr r) {
    auto e = std::make_unique<AstExpr>();
    e->kind = kind;
    e->offset = offset;
    e->children.push_back(std::move(l));
    e->children.push_back(std::move(r));
    return e;
  }

  AstExprPtr ParseOr() {
    auto l = ParseAnd();
    if (l == nullptr) return nullptr;
    while (AtKeyword("OR")) {
      size_t offset = Advance().offset;
      auto r = ParseAnd();
      if (r == nullptr) return nullptr;
      l = MakeBinary(AstExprKind::kOr, offset, std::move(l), std::move(r));
    }
    return l;
  }

  AstExprPtr ParseAnd() {
    auto l = ParseNot();
    if (l == nullptr) return nullptr;
    while (AtKeyword("AND")) {
      size_t offset = Advance().offset;
      auto r = ParseNot();
      if (r == nullptr) return nullptr;
      l = MakeBinary(AstExprKind::kAnd, offset, std::move(l), std::move(r));
    }
    return l;
  }

  AstExprPtr ParseNot() {
    if (AtKeyword("NOT")) {
      size_t offset = Advance().offset;
      auto operand = ParseNot();
      if (operand == nullptr) return nullptr;
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kNot;
      e->offset = offset;
      e->children.push_back(std::move(operand));
      return e;
    }
    return ParsePredicate();
  }

  static bool CompareOpOf(TokenKind kind, CompareOp* op) {
    if (kind == TokenKind::kEq) *op = CompareOp::kEq;
    else if (kind == TokenKind::kNe) *op = CompareOp::kNe;
    else if (kind == TokenKind::kLt) *op = CompareOp::kLt;
    else if (kind == TokenKind::kLe) *op = CompareOp::kLe;
    else if (kind == TokenKind::kGt) *op = CompareOp::kGt;
    else if (kind == TokenKind::kGe) *op = CompareOp::kGe;
    else return false;
    return true;
  }

  AstExprPtr ParsePredicate() {
    auto l = ParseAdditive();
    if (l == nullptr) return nullptr;
    CompareOp op;
    if (!CompareOpOf(Peek().kind, &op)) {
      {
        if (AtKeyword("IS")) {
          size_t offset = Advance().offset;
          bool negated = EatKeyword("NOT");
          if (!ExpectKeyword("NULL")) return nullptr;
          auto e = std::make_unique<AstExpr>();
          e->kind = AstExprKind::kIsNull;
          e->offset = offset;
          e->children.push_back(std::move(l));
          if (!negated) return e;
          auto n = std::make_unique<AstExpr>();
          n->kind = AstExprKind::kNot;
          n->offset = offset;
          n->children.push_back(std::move(e));
          return n;
        }
        bool negated = false;
        size_t not_offset = Peek().offset;
        if (AtKeyword("NOT") &&
            (Peek(1).IsKeyword("BETWEEN") || Peek(1).IsKeyword("IN"))) {
          Advance();
          negated = true;
        }
        if (AtKeyword("BETWEEN")) {
          size_t offset = Advance().offset;
          auto lo = ParseAdditive();
          if (lo == nullptr) return nullptr;
          if (!ExpectKeyword("AND")) return nullptr;
          auto hi = ParseAdditive();
          if (hi == nullptr) return nullptr;
          // Desugar: l >= lo AND l <= hi (the binder re-binds the shared
          // operand, so a plain structural copy is enough).
          auto lower = MakeBinary(AstExprKind::kCompare, offset, CloneExpr(*l),
                                  std::move(lo));
          lower->compare_op = CompareOp::kGe;
          auto upper = MakeBinary(AstExprKind::kCompare, offset, std::move(l),
                                  std::move(hi));
          upper->compare_op = CompareOp::kLe;
          auto e = MakeBinary(AstExprKind::kAnd, offset, std::move(lower),
                              std::move(upper));
          return negated ? Negate(not_offset, std::move(e)) : std::move(e);
        }
        if (AtKeyword("IN")) {
          size_t offset = Advance().offset;
          if (!Expect(TokenKind::kLParen)) return nullptr;
          auto e = std::make_unique<AstExpr>();
          e->kind = AstExprKind::kInList;
          e->offset = offset;
          e->children.push_back(std::move(l));
          do {
            auto item = ParseExpr();
            if (item == nullptr) return nullptr;
            e->children.push_back(std::move(item));
          } while (Eat(TokenKind::kComma));
          if (!Expect(TokenKind::kRParen)) return nullptr;
          return negated ? Negate(not_offset, std::move(e)) : std::move(e);
        }
        return l;
      }
    }
    size_t offset = Advance().offset;  // consume the comparison operator
    auto r = ParseAdditive();
    if (r == nullptr) return nullptr;
    auto e = MakeBinary(AstExprKind::kCompare, offset, std::move(l),
                        std::move(r));
    e->compare_op = op;
    return e;
  }

  AstExprPtr Negate(size_t offset, AstExprPtr e) {
    auto n = std::make_unique<AstExpr>();
    n->kind = AstExprKind::kNot;
    n->offset = offset;
    n->children.push_back(std::move(e));
    return n;
  }

  static AstExprPtr CloneExpr(const AstExpr& e) {
    auto c = std::make_unique<AstExpr>();
    c->kind = e.kind;
    c->offset = e.offset;
    c->qualifier = e.qualifier;
    c->name = e.name;
    c->int_value = e.int_value;
    c->float_value = e.float_value;
    c->string_value = e.string_value;
    c->compare_op = e.compare_op;
    c->arith_op = e.arith_op;
    c->distinct = e.distinct;
    c->star = e.star;
    for (const AstExprPtr& child : e.children) {
      c->children.push_back(CloneExpr(*child));
    }
    return c;
  }

  AstExprPtr ParseAdditive() {
    auto l = ParseMultiplicative();
    if (l == nullptr) return nullptr;
    while (Peek().kind == TokenKind::kPlus || Peek().kind == TokenKind::kMinus) {
      ArithOp op = Peek().kind == TokenKind::kPlus ? ArithOp::kAdd
                                                   : ArithOp::kSub;
      size_t offset = Advance().offset;
      auto r = ParseMultiplicative();
      if (r == nullptr) return nullptr;
      auto e = MakeBinary(AstExprKind::kArith, offset, std::move(l),
                          std::move(r));
      e->arith_op = op;
      l = std::move(e);
    }
    return l;
  }

  AstExprPtr ParseMultiplicative() {
    auto l = ParseUnary();
    if (l == nullptr) return nullptr;
    while (Peek().kind == TokenKind::kStar ||
           Peek().kind == TokenKind::kSlash) {
      ArithOp op = Peek().kind == TokenKind::kStar ? ArithOp::kMul
                                                   : ArithOp::kDiv;
      size_t offset = Advance().offset;
      auto r = ParseUnary();
      if (r == nullptr) return nullptr;
      auto e = MakeBinary(AstExprKind::kArith, offset, std::move(l),
                          std::move(r));
      e->arith_op = op;
      l = std::move(e);
    }
    return l;
  }

  AstExprPtr ParseUnary() {
    if (Peek().kind == TokenKind::kMinus) {
      size_t offset = Advance().offset;
      auto operand = ParseUnary();
      if (operand == nullptr) return nullptr;
      // Fold into the literal when possible, else desugar to 0 - operand.
      if (operand->kind == AstExprKind::kIntLit) {
        operand->int_value = -operand->int_value;
        return operand;
      }
      if (operand->kind == AstExprKind::kFloatLit) {
        operand->float_value = -operand->float_value;
        return operand;
      }
      auto zero = std::make_unique<AstExpr>();
      zero->kind = AstExprKind::kIntLit;
      zero->offset = offset;
      auto e = MakeBinary(AstExprKind::kArith, offset, std::move(zero),
                          std::move(operand));
      e->arith_op = ArithOp::kSub;
      return e;
    }
    return ParsePrimary();
  }

  static bool IsAggregateName(const Token& t) {
    return t.IsKeyword("COUNT") || t.IsKeyword("SUM") || t.IsKeyword("MIN") ||
           t.IsKeyword("MAX") || t.IsKeyword("AVG");
  }

  AstExprPtr ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kInt) {
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kIntLit;
      e->offset = t.offset;
      e->int_value = std::atoll(Advance().text.c_str());
      return e;
    }
    if (t.kind == TokenKind::kFloat) {
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kFloatLit;
      e->offset = t.offset;
      e->float_value = std::atof(Advance().text.c_str());
      return e;
    }
    if (t.kind == TokenKind::kString) {
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kStringLit;
      e->offset = t.offset;
      e->string_value = Advance().text;
      return e;
    }
    if (t.kind == TokenKind::kLParen) {
      Advance();
      auto e = ParseExpr();
      if (e == nullptr) return nullptr;
      if (!Expect(TokenKind::kRParen)) return nullptr;
      return e;
    }
    if (t.kind != TokenKind::kIdent) {
      Error("expected expression, found " + Describe(t));
      return nullptr;
    }
    if (t.IsKeyword("TRUE") || t.IsKeyword("FALSE")) {
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kBoolLit;
      e->offset = t.offset;
      e->int_value = t.IsKeyword("TRUE") ? 1 : 0;
      Advance();
      return e;
    }
    if (t.IsKeyword("NULL")) {
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kNullLit;
      e->offset = t.offset;
      Advance();
      return e;
    }
    if (t.IsKeyword("CASE")) return ParseCase();
    if (IsAggregateName(t) && Peek(1).kind == TokenKind::kLParen) {
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kFuncCall;
      e->offset = t.offset;
      e->name = Advance().text;
      for (char& c : e->name) c = static_cast<char>(std::toupper(
          static_cast<unsigned char>(c)));
      Advance();  // '('
      if (Peek().kind == TokenKind::kStar) {
        Advance();
        e->star = true;
      } else {
        e->distinct = EatKeyword("DISTINCT");
        auto arg = ParseExpr();
        if (arg == nullptr) return nullptr;
        e->children.push_back(std::move(arg));
      }
      if (!Expect(TokenKind::kRParen)) return nullptr;
      return e;
    }
    if (IsReservedKeyword(t)) {
      Error("expected expression, found '" + t.text + "'");
      return nullptr;
    }
    // Column reference, optionally qualified.
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExprKind::kColumn;
    e->offset = t.offset;
    e->name = Advance().text;
    if (Peek().kind == TokenKind::kDot) {
      Advance();
      if (Peek().kind != TokenKind::kIdent) {
        Error("expected column name after '.', found " + Describe(Peek()));
        return nullptr;
      }
      e->qualifier = std::move(e->name);
      e->name = Advance().text;
    }
    return e;
  }

  AstExprPtr ParseCase() {
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExprKind::kCase;
    e->offset = Peek().offset;
    Advance();  // CASE
    if (!AtKeyword("WHEN")) {
      Error("expected WHEN after CASE (simple CASE is not supported)");
      return nullptr;
    }
    while (EatKeyword("WHEN")) {
      auto when = ParseExpr();
      if (when == nullptr) return nullptr;
      if (!ExpectKeyword("THEN")) return nullptr;
      auto then = ParseExpr();
      if (then == nullptr) return nullptr;
      e->children.push_back(std::move(when));
      e->children.push_back(std::move(then));
    }
    if (EatKeyword("ELSE")) {
      auto els = ParseExpr();
      if (els == nullptr) return nullptr;
      e->children.push_back(std::move(els));
    } else {
      auto els = std::make_unique<AstExpr>();
      els->kind = AstExprKind::kNullLit;
      els->offset = Peek().offset;
      e->children.push_back(std::move(els));
    }
    if (!ExpectKeyword("END")) return nullptr;
    return e;
  }

  std::vector<Token> tokens_;
  std::vector<SqlDiagnostic>* diag_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace

std::unique_ptr<Statement> Parse(const std::string& sql,
                                 std::vector<SqlDiagnostic>* diag) {
  std::vector<Token> tokens = Lex(sql, diag);
  if (!diag->empty()) return nullptr;
  Parser parser(std::move(tokens), diag);
  return parser.ParseStatement();
}

}  // namespace fusiondb::sql
