// Binder: resolves a parsed Statement against a Catalog and produces a bound
// logical plan in the caller's PlanContext. Name-resolution and structural
// errors are [sql-*] kPlanError diagnostics; typing errors are kTypeError —
// every diagnostic points at the byte offset of the offending token.
#ifndef FUSIONDB_SQL_BINDER_H_
#define FUSIONDB_SQL_BINDER_H_

#include <vector>

#include "catalog/catalog.h"
#include "plan/logical_plan.h"
#include "plan/plan_context.h"
#include "sql/ast.h"
#include "sql/diagnostics.h"

namespace fusiondb::sql {

/// Binds `stmt` to a logical plan. Returns null and appends one diagnostic
/// to `diag` on the first binding error.
PlanPtr Bind(const Statement& stmt, const Catalog& catalog, PlanContext* ctx,
             std::vector<SqlDiagnostic>* diag);

}  // namespace fusiondb::sql

#endif  // FUSIONDB_SQL_BINDER_H_
