#include "sql/sql.h"

#include "sql/binder.h"
#include "sql/parser.h"

namespace fusiondb::sql {

std::string ParseResult::FormatErrors() const {
  std::string out;
  for (const SqlDiagnostic& d : diagnostics) {
    out += FormatDiagnostic(text, d);
  }
  return out;
}

ParseResult ParseAndBind(const std::string& text, const Catalog& catalog,
                         PlanContext* ctx) {
  ParseResult result;
  result.text = text;
  std::unique_ptr<Statement> stmt = Parse(text, &result.diagnostics);
  if (stmt == nullptr) return result;
  result.plan = Bind(*stmt, catalog, ctx, &result.diagnostics);
  return result;
}

Result<PlanPtr> BindSql(const std::string& text, const Catalog& catalog,
                        PlanContext* ctx) {
  ParseResult parsed = ParseAndBind(text, catalog, ctx);
  if (!parsed.ok()) return parsed.status();
  return parsed.plan;
}

}  // namespace fusiondb::sql
