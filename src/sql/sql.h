// Public SQL front-end entry points: text -> bound logical plan.
//
//   PlanContext ctx;
//   auto parsed = sql::ParseAndBind("SELECT ... FROM ...", catalog, &ctx);
//   if (!parsed.ok()) { std::cerr << parsed.FormatErrors(); ... }
//   PlanPtr plan = parsed.plan;
//
// Or, when only a Status is wanted: sql::BindSql(text, catalog, &ctx).
#ifndef FUSIONDB_SQL_SQL_H_
#define FUSIONDB_SQL_SQL_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "plan/logical_plan.h"
#include "plan/plan_context.h"
#include "sql/diagnostics.h"

namespace fusiondb::sql {

/// Outcome of parsing + binding one SQL statement. On failure `plan` is null
/// and `diagnostics` holds at least one entry pointing into `text`.
struct ParseResult {
  std::string text;
  PlanPtr plan;
  std::vector<SqlDiagnostic> diagnostics;

  bool ok() const { return plan != nullptr; }

  /// All diagnostics rendered as compiler-style caret snippets.
  std::string FormatErrors() const;

  /// First diagnostic as a Status (OK when the parse succeeded).
  Status status() const { return DiagnosticsToStatus(text, diagnostics); }
};

/// Parses and binds one SELECT statement against `catalog`, minting plan
/// columns in `ctx`.
ParseResult ParseAndBind(const std::string& text, const Catalog& catalog,
                         PlanContext* ctx);

/// Status-only variant for callers that do not need positional diagnostics.
Result<PlanPtr> BindSql(const std::string& text, const Catalog& catalog,
                        PlanContext* ctx);

}  // namespace fusiondb::sql

#endif  // FUSIONDB_SQL_SQL_H_
