// Recursive-descent SQL parser over the token stream (sql/lexer.h).
// Produces a Statement parse tree; syntax errors are reported as
// [sql-syntax] diagnostics pointing at the offending token.
#ifndef FUSIONDB_SQL_PARSER_H_
#define FUSIONDB_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "sql/diagnostics.h"

namespace fusiondb::sql {

/// Parses `sql` into a Statement. Returns null and appends one diagnostic
/// to `diag` on the first syntax error.
std::unique_ptr<Statement> Parse(const std::string& sql,
                                 std::vector<SqlDiagnostic>* diag);

}  // namespace fusiondb::sql

#endif  // FUSIONDB_SQL_PARSER_H_
