#include "sql/diagnostics.h"

namespace fusiondb::sql {

SqlPosition PositionOf(const std::string& sql, size_t offset) {
  SqlPosition pos;
  if (offset > sql.size()) offset = sql.size();
  for (size_t i = 0; i < offset; ++i) {
    if (sql[i] == '\n') {
      ++pos.line;
      pos.column = 1;
    } else {
      ++pos.column;
    }
  }
  return pos;
}

std::string FormatDiagnostic(const std::string& sql, const SqlDiagnostic& d) {
  SqlPosition pos = PositionOf(sql, d.offset);
  std::string out = "sql:" + std::to_string(pos.line) + ":" +
                    std::to_string(pos.column) + ": " + d.message + "\n";
  // The offending line, then a caret under the offending column.
  size_t line_start = d.offset > sql.size() ? sql.size() : d.offset;
  while (line_start > 0 && sql[line_start - 1] != '\n') --line_start;
  size_t line_end = line_start;
  while (line_end < sql.size() && sql[line_end] != '\n') ++line_end;
  out += "  " + sql.substr(line_start, line_end - line_start) + "\n";
  out += "  ";
  for (int i = 1; i < pos.column; ++i) out += ' ';
  out += "^\n";
  return out;
}

Status DiagnosticsToStatus(const std::string& sql,
                           const std::vector<SqlDiagnostic>& diagnostics) {
  if (diagnostics.empty()) return Status::OK();
  const SqlDiagnostic& d = diagnostics.front();
  SqlPosition pos = PositionOf(sql, d.offset);
  return Status(d.code, "at " + std::to_string(pos.line) + ":" +
                            std::to_string(pos.column) + ": " + d.message);
}

}  // namespace fusiondb::sql
