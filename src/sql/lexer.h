// SQL lexer: turns query text into a token stream with byte offsets, so
// every later stage (parser, binder) can point diagnostics at the exact
// source position (sql/diagnostics.h).
#ifndef FUSIONDB_SQL_LEXER_H_
#define FUSIONDB_SQL_LEXER_H_

#include <string>
#include <vector>

#include "sql/diagnostics.h"

namespace fusiondb::sql {

enum class TokenKind : uint8_t {
  kEof,
  kIdent,    // bare identifier (keywords are classified by the parser)
  kInt,      // integer literal
  kFloat,    // decimal literal
  kString,   // single-quoted string literal ('' escapes a quote)
  kComma,
  kLParen,
  kRParen,
  kDot,
  kSemicolon,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kEq,  // =
  kNe,  // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;   // raw text (string literals: unescaped contents)
  size_t offset = 0;  // byte offset of the first character in the SQL text

  /// Case-insensitive keyword match (SQL keywords are not reserved; the
  /// parser decides from context whether an ident is a keyword).
  bool IsKeyword(const char* keyword) const;
};

/// Tokenizes `sql`. On a lexical error (stray character, unterminated
/// string) returns the partial token list ending in kEof and appends one
/// diagnostic to `diag`.
std::vector<Token> Lex(const std::string& sql, std::vector<SqlDiagnostic>* diag);

}  // namespace fusiondb::sql

#endif  // FUSIONDB_SQL_LEXER_H_
