// Seeded random SQL generator for the differential fuzz harness
// (tests/sql_fuzz_test.cc, EXPERIMENTS.md "fuzz protocol").
//
// Queries are generated as structured specs, rendered to SQL text, and
// constrained so every generated query is (a) valid in the engine's dialect
// and (b) deterministic across optimizer modes and executor backends:
// whenever a LIMIT is emitted the query also ORDER BYs *all* of its output
// columns, so ties cannot select different rows under different plans.
// Joins always carry at least one equi condition, FK-style against the
// joined table's single-column primary key, so join cardinality stays
// bounded by the left side.
//
// Keeping the spec structured (instead of flat text) is what makes failure
// minimization possible: Reductions() enumerates the one-step-smaller specs
// (drop a WHERE conjunct, a SELECT item, an unused join, ...) and the
// harness greedily keeps any reduction that still reproduces a divergence.
#ifndef FUSIONDB_SQL_RANDOM_QUERY_H_
#define FUSIONDB_SQL_RANDOM_QUERY_H_

#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "types/value.h"

namespace fusiondb::sql {

/// Sampled rows per table (inner vectors align with Table::columns()).
/// Filled by the harness from real scans so generated literals land in each
/// column's actual value range instead of selecting nothing.
struct ValuePool {
  std::map<std::string, std::vector<std::vector<Value>>> rows;
};

/// One rendered clause plus the table aliases it references (used by the
/// minimizer to know when a join becomes droppable).
struct FuzzClause {
  std::string text;
  std::vector<std::string> aliases;
};

struct FuzzJoin {
  std::string table;
  std::string alias;
  bool left = false;  // LEFT OUTER instead of INNER
  FuzzClause condition;
};

/// One generated SELECT statement (optionally UNION ALL of two cores that
/// differ only in their WHERE literals, so output types always line up).
struct FuzzQuerySpec {
  std::string from_table;
  std::string from_alias;
  std::vector<FuzzJoin> joins;
  std::vector<FuzzClause> where;      // conjuncts, ANDed
  std::vector<FuzzClause> group_by;   // plain qualified columns
  std::vector<FuzzClause> select;     // rendered items; aliased c0..cN
  FuzzClause having;                  // empty text when absent
  std::shared_ptr<FuzzQuerySpec> union_branch;  // second UNION ALL core
  int64_t limit = -1;                 // -1 == none; implies ORDER BY all

  /// Renders the spec as one SQL statement (always ORDER BY every output
  /// position, so results are totally ordered across modes).
  std::string ToSql() const;
};

/// Renders a Value as a SQL literal ('' -escaped strings, NULL as NULL).
std::string SqlLiteral(const Value& v);

/// Generates one random-but-valid query over `catalog`. Deterministic in
/// the rng state: the same seed sequence yields the same query stream.
FuzzQuerySpec GenerateQuery(const Catalog& catalog, const ValuePool& pool,
                            std::mt19937_64& rng);

/// All one-step reductions of `spec` (each drops exactly one optional
/// element), ordered from coarsest (drop the UNION branch) to finest. The
/// minimizer keeps the first reduction that still fails and recurses.
std::vector<FuzzQuerySpec> Reductions(const FuzzQuerySpec& spec);

}  // namespace fusiondb::sql

#endif  // FUSIONDB_SQL_RANDOM_QUERY_H_
