#include "sql/binder.h"

#include <cctype>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "expr/expr_builder.h"

namespace fusiondb::sql {

namespace {

/// One name visible in a FROM scope: `qualifier.name` -> plan column.
struct ScopeColumn {
  std::string qualifier;  // table alias
  std::string name;
  ColumnId id = kInvalidColumnId;
  DataType type = DataType::kInt64;
};

struct Scope {
  std::vector<ScopeColumn> columns;
};

/// Post-aggregation binding context: plain column references must be group
/// keys; aggregate calls map (by structural fingerprint) to the output
/// columns of the AggregateOp underneath.
struct AggContext {
  std::set<ColumnId> group_ids;
  std::map<std::string, ColumnInfo> calls;
};

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

class Binder {
 public:
  Binder(const Catalog& catalog, PlanContext* ctx,
         std::vector<SqlDiagnostic>* diag)
      : catalog_(catalog), ctx_(ctx), diag_(diag) {}

  PlanPtr BindStatement(const Statement& stmt) {
    std::vector<PlanPtr> branches;
    for (const auto& core : stmt.selects) {
      PlanPtr branch = BindSelectCore(*core);
      if (branch == nullptr) return nullptr;
      branches.push_back(std::move(branch));
    }
    PlanPtr plan = branches.size() == 1
                       ? branches[0]
                       : BindUnionAll(stmt, std::move(branches));
    if (plan == nullptr) return nullptr;

    if (!stmt.order_by.empty()) {
      std::vector<SortKey> keys;
      for (const OrderItem& item : stmt.order_by) {
        ColumnId id = ResolveOrderTarget(*item.expr, plan->schema());
        if (id == kInvalidColumnId) return nullptr;
        keys.push_back({id, item.ascending});
      }
      plan = std::make_shared<SortOp>(plan, std::move(keys));
    }
    if (stmt.limit >= 0) {
      plan = std::make_shared<LimitOp>(plan, stmt.limit);
    }
    return plan;
  }

 private:
  // --- diagnostics ---------------------------------------------------------

  std::nullptr_t Error(StatusCode code, size_t offset,
                       const std::string& message) {
    if (!failed_) {
      failed_ = true;
      diag_->push_back({code, message, offset});
    }
    return nullptr;
  }
  std::nullptr_t PlanError(size_t offset, const std::string& message) {
    return Error(StatusCode::kPlanError, offset, message);
  }
  std::nullptr_t TypeError(size_t offset, const std::string& message) {
    return Error(StatusCode::kTypeError, offset, message);
  }

  // --- FROM / joins --------------------------------------------------------

  PlanPtr BindTableRef(const TableRef& ref, Scope* scope) {
    std::string alias = ref.alias.empty() ? ref.table : ref.alias;
    for (const ScopeColumn& c : scope->columns) {
      if (c.qualifier == alias) {
        return PlanError(ref.offset, "[sql-duplicate-alias] duplicate table "
                                     "alias '" + alias + "' in FROM");
      }
    }
    PlanPtr plan;
    if (ref.subquery != nullptr) {
      plan = BindStatement(*ref.subquery);
      if (plan == nullptr) return nullptr;
      for (const ColumnInfo& c : plan->schema().columns()) {
        scope->columns.push_back({alias, c.name, c.id, c.type});
      }
      // A pure-rename root projection (every item a pass-through column
      // ref) carries nothing the plan needs: the outer query references
      // columns by id and the scope rows above already hold the output
      // names. It does, however, hide the subquery's shape from the fusion
      // rules' pattern matchers (a Project between a Join and an Aggregate
      // defeats GroupByJoinToWindow), so unwrap it.
      if (plan->kind() == OpKind::kProject) {
        const auto& project = static_cast<const ProjectOp&>(*plan);
        bool pure_rename = true;
        for (const NamedExpr& ne : project.exprs()) {
          if (ne.expr->kind() != ExprKind::kColumnRef ||
              ne.expr->column_id() != ne.id) {
            pure_rename = false;
            break;
          }
        }
        if (pure_rename) plan = plan->child(0);
      }
      return plan;
    }
    auto table = catalog_.GetTable(ref.table);
    if (!table.ok()) {
      return PlanError(ref.offset,
                       "[sql-unknown-table] no such table: " + ref.table);
    }
    // Scan every table column; the optimizer's column pruning trims unused
    // ones, so binding never has to predict which columns a query touches.
    std::vector<std::string> names;
    for (const TableColumn& c : (*table)->columns()) names.push_back(c.name);
    plan = ScanOp::Make(ctx_, *table, names);
    for (const ColumnInfo& c : plan->schema().columns()) {
      scope->columns.push_back({alias, c.name, c.id, c.type});
    }
    return plan;
  }

  // --- name resolution -----------------------------------------------------

  const ScopeColumn* ResolveColumn(const Scope& scope,
                                   const std::string& qualifier,
                                   const std::string& name, size_t offset) {
    const ScopeColumn* found = nullptr;
    bool saw_qualifier = false;
    for (const ScopeColumn& c : scope.columns) {
      if (!qualifier.empty()) {
        if (c.qualifier != qualifier) continue;
        saw_qualifier = true;
      }
      if (c.name != name) continue;
      if (found != nullptr) {
        PlanError(offset, "[sql-ambiguous-column] column '" + name +
                              "' is ambiguous; qualify it with a table alias");
        return nullptr;
      }
      found = &c;
    }
    if (found == nullptr) {
      if (!qualifier.empty() && !saw_qualifier) {
        PlanError(offset, "[sql-unknown-table] no table named '" + qualifier +
                              "' in FROM");
      } else {
        PlanError(offset, "[sql-unknown-column] no column named '" +
                              (qualifier.empty() ? name : qualifier + "." + name) +
                              "'");
      }
      return nullptr;
    }
    return found;
  }

  // --- expressions ---------------------------------------------------------

  /// Binds a scalar expression. `agg` is null where aggregates are illegal
  /// (WHERE, ON, GROUP BY); when set, plain columns must be group keys and
  /// kFuncCall resolves to the matching AggregateOp output. `null_hint`
  /// types bare NULL literals from their comparison context.
  ExprPtr BindExpr(const AstExpr& e, const Scope& scope, const AggContext* agg,
                   DataType null_hint = DataType::kInt64) {
    switch (e.kind) {
      case AstExprKind::kIntLit:
        return eb::Int(e.int_value);
      case AstExprKind::kFloatLit:
        return eb::Dbl(e.float_value);
      case AstExprKind::kStringLit:
        return eb::Str(e.string_value);
      case AstExprKind::kBoolLit:
        return eb::Lit(Value::Bool(e.int_value != 0));
      case AstExprKind::kNullLit:
        return eb::NullOf(null_hint);
      case AstExprKind::kColumn: {
        const ScopeColumn* c =
            ResolveColumn(scope, e.qualifier, e.name, e.offset);
        if (c == nullptr) return nullptr;
        if (agg != nullptr && agg->group_ids.count(c->id) == 0) {
          return PlanError(e.offset,
                           "[sql-not-grouped] column '" + e.name +
                               "' must appear in GROUP BY or inside an "
                               "aggregate function");
        }
        return eb::Col(c->id, c->type);
      }
      case AstExprKind::kFuncCall: {
        if (agg == nullptr) {
          return PlanError(e.offset,
                           "[sql-aggregate-context] aggregate function '" +
                               e.name + "' is not allowed here");
        }
        ExprPtr arg;
        if (!e.star) {
          arg = BindExpr(*e.children[0], scope, nullptr);
          if (arg == nullptr) return nullptr;
        }
        auto it = agg->calls.find(CallKey(e.name, e.distinct, arg));
        FUSIONDB_CHECK(it != agg->calls.end(), "aggregate not collected");
        return eb::Col(it->second);
      }
      case AstExprKind::kCompare: {
        ExprPtr l, r;
        if (!BindComparisonOperands(e, scope, agg, &l, &r)) return nullptr;
        return Expr::MakeCompare(e.compare_op, std::move(l), std::move(r));
      }
      case AstExprKind::kArith: {
        ExprPtr l = BindExpr(*e.children[0], scope, agg, DataType::kInt64);
        if (l == nullptr) return nullptr;
        ExprPtr r = BindExpr(*e.children[1], scope, agg, l->type());
        if (r == nullptr) return nullptr;
        if (!IsNumeric(l->type()) || !IsNumeric(r->type())) {
          return TypeError(e.offset,
                           "[sql-type] arithmetic requires numeric operands, "
                           "got " + std::string(DataTypeName(l->type())) +
                               " and " + DataTypeName(r->type()));
        }
        switch (e.arith_op) {
          case ArithOp::kAdd: return eb::Add(std::move(l), std::move(r));
          case ArithOp::kSub: return eb::Sub(std::move(l), std::move(r));
          case ArithOp::kMul: return eb::Mul(std::move(l), std::move(r));
          case ArithOp::kDiv: return eb::Div(std::move(l), std::move(r));
        }
        return nullptr;
      }
      case AstExprKind::kAnd:
      case AstExprKind::kOr: {
        ExprPtr l = BindBool(*e.children[0], scope, agg);
        if (l == nullptr) return nullptr;
        ExprPtr r = BindBool(*e.children[1], scope, agg);
        if (r == nullptr) return nullptr;
        return e.kind == AstExprKind::kAnd ? eb::And(std::move(l), std::move(r))
                                           : eb::Or(std::move(l), std::move(r));
      }
      case AstExprKind::kNot: {
        ExprPtr c = BindBool(*e.children[0], scope, agg);
        if (c == nullptr) return nullptr;
        return eb::Not(std::move(c));
      }
      case AstExprKind::kIsNull: {
        ExprPtr c = BindExpr(*e.children[0], scope, agg);
        if (c == nullptr) return nullptr;
        return eb::IsNull(std::move(c));
      }
      case AstExprKind::kInList: {
        ExprPtr operand = BindExpr(*e.children[0], scope, agg);
        if (operand == nullptr) return nullptr;
        std::vector<ExprPtr> children;
        children.push_back(operand);
        for (size_t i = 1; i < e.children.size(); ++i) {
          ExprPtr item =
              BindExpr(*e.children[i], scope, agg, operand->type());
          if (item == nullptr) return nullptr;
          if (!Comparable(operand->type(), item->type())) {
            return TypeError(e.children[i]->offset,
                             "[sql-type] IN list item type " +
                                 std::string(DataTypeName(item->type())) +
                                 " does not match operand type " +
                                 DataTypeName(operand->type()));
          }
          children.push_back(std::move(item));
        }
        return Expr::MakeInList(std::move(children));
      }
      case AstExprKind::kCase: {
        // children: when1, then1, ..., whenN, thenN, else. The first
        // non-NULL branch fixes the result type; NULL branches inherit it.
        DataType result = null_hint;
        std::vector<size_t> branch_indexes;
        for (size_t i = 1; i + 1 < e.children.size(); i += 2) {
          branch_indexes.push_back(i);  // THENs
        }
        branch_indexes.push_back(e.children.size() - 1);  // ELSE
        for (size_t i : branch_indexes) {
          if (e.children[i]->kind != AstExprKind::kNullLit) {
            ExprPtr probe = BindExpr(*e.children[i], scope, agg, null_hint);
            if (probe == nullptr) return nullptr;
            result = probe->type();
            break;
          }
        }
        std::vector<ExprPtr> children;
        for (size_t i = 0; i + 1 < e.children.size(); i += 2) {
          ExprPtr when = BindBool(*e.children[i], scope, agg);
          if (when == nullptr) return nullptr;
          ExprPtr then = BindExpr(*e.children[i + 1], scope, agg, result);
          if (then == nullptr) return nullptr;
          if (then->type() != result) {
            return TypeError(e.children[i + 1]->offset,
                             "[sql-case-type] CASE branches have mixed "
                             "types " + std::string(DataTypeName(result)) +
                                 " and " + DataTypeName(then->type()));
          }
          children.push_back(std::move(when));
          children.push_back(std::move(then));
        }
        ExprPtr els = BindExpr(*e.children.back(), scope, agg, result);
        if (els == nullptr) return nullptr;
        if (els->type() != result) {
          return TypeError(e.children.back()->offset,
                           "[sql-case-type] CASE branches have mixed types " +
                               std::string(DataTypeName(result)) + " and " +
                               DataTypeName(els->type()));
        }
        children.push_back(std::move(els));
        return Expr::MakeCase(std::move(children), result);
      }
    }
    return nullptr;
  }

  bool BindComparisonOperands(const AstExpr& e, const Scope& scope,
                              const AggContext* agg, ExprPtr* l, ExprPtr* r) {
    // Bind the non-NULL side first so a bare NULL picks up its sibling's
    // type instead of defaulting to int64.
    const AstExpr& la = *e.children[0];
    const AstExpr& ra = *e.children[1];
    if (la.kind == AstExprKind::kNullLit && ra.kind != AstExprKind::kNullLit) {
      *r = BindExpr(ra, scope, agg);
      if (*r == nullptr) return false;
      *l = BindExpr(la, scope, agg, (*r)->type());
      return *l != nullptr;
    }
    *l = BindExpr(la, scope, agg);
    if (*l == nullptr) return false;
    *r = BindExpr(ra, scope, agg, (*l)->type());
    if (*r == nullptr) return false;
    if (!Comparable((*l)->type(), (*r)->type())) {
      TypeError(e.offset, "[sql-type] cannot compare " +
                              std::string(DataTypeName((*l)->type())) +
                              " with " + DataTypeName((*r)->type()));
      return false;
    }
    return true;
  }

  ExprPtr BindBool(const AstExpr& e, const Scope& scope,
                   const AggContext* agg) {
    ExprPtr bound = BindExpr(e, scope, agg, DataType::kBool);
    if (bound == nullptr) return nullptr;
    if (bound->type() != DataType::kBool) {
      return TypeError(e.offset, "[sql-type] expected a boolean condition, "
                                 "got " +
                                     std::string(DataTypeName(bound->type())));
    }
    return bound;
  }

  static bool Comparable(DataType a, DataType b) {
    return a == b || (IsNumeric(a) && IsNumeric(b));
  }

  // --- aggregation ---------------------------------------------------------

  static bool HasAggregate(const AstExpr& e) {
    if (e.kind == AstExprKind::kFuncCall) return true;
    for (const AstExprPtr& c : e.children) {
      if (HasAggregate(*c)) return true;
    }
    return false;
  }

  static std::string CallKey(const std::string& func, bool distinct,
                             const ExprPtr& arg) {
    return Lower(func) + (distinct ? "|d|" : "|a|") +
           (arg == nullptr ? "*" : ExprFingerprint(arg));
  }

  /// Collects each distinct aggregate call under `e` into `agg->calls`,
  /// binding arguments against the pre-aggregation scope.
  bool CollectAggregates(const AstExpr& e, const Scope& scope,
                         AggContext* agg,
                         std::vector<AggregateItem>* items) {
    if (e.kind != AstExprKind::kFuncCall) {
      for (const AstExprPtr& c : e.children) {
        if (!CollectAggregates(*c, scope, agg, items)) return false;
      }
      return true;
    }
    AggFunc func;
    std::string upper = e.name;  // parser uppercases function names
    if (upper == "COUNT") {
      func = e.star ? AggFunc::kCountStar : AggFunc::kCount;
    } else if (upper == "SUM") {
      func = AggFunc::kSum;
    } else if (upper == "MIN") {
      func = AggFunc::kMin;
    } else if (upper == "MAX") {
      func = AggFunc::kMax;
    } else if (upper == "AVG") {
      func = AggFunc::kAvg;
    } else {
      PlanError(e.offset,
                "[sql-unknown-function] unknown function '" + e.name + "'");
      return false;
    }
    ExprPtr arg;
    if (!e.star) {
      if (HasAggregate(*e.children[0])) {
        PlanError(e.children[0]->offset,
                  "[sql-nested-aggregate] aggregate calls cannot be nested");
        return false;
      }
      arg = BindExpr(*e.children[0], scope, nullptr);
      if (arg == nullptr) return false;
      if ((func == AggFunc::kSum || func == AggFunc::kAvg) &&
          !IsNumeric(arg->type())) {
        TypeError(e.children[0]->offset,
                  "[sql-type] " + Lower(e.name) + " requires a numeric "
                  "argument, got " + DataTypeName(arg->type()));
        return false;
      }
    }
    std::string key = CallKey(e.name, e.distinct, arg);
    if (agg->calls.count(key) > 0) return true;  // deduplicated
    AggregateItem item;
    item.id = ctx_->NextId();
    item.name = Lower(e.name);
    item.func = func;
    item.arg = arg;
    item.distinct = e.distinct;
    agg->calls[key] = {item.id, item.name, item.result_type()};
    items->push_back(std::move(item));
    return true;
  }

  // --- SELECT core ---------------------------------------------------------

  PlanPtr BindSelectCore(const SelectCore& core) {
    Scope scope;
    PlanPtr plan = BindTableRef(core.from, &scope);
    if (plan == nullptr) return nullptr;

    for (const JoinClause& join : core.joins) {
      PlanPtr right = BindTableRef(join.ref, &scope);
      if (right == nullptr) return nullptr;
      ExprPtr condition = BindBool(*join.condition, scope, nullptr);
      if (condition == nullptr) return nullptr;
      plan = std::make_shared<JoinOp>(join.type, plan, right,
                                      std::move(condition));
    }

    if (core.where != nullptr) {
      ExprPtr predicate = BindBool(*core.where, scope, nullptr);
      if (predicate == nullptr) return nullptr;
      plan = std::make_shared<FilterOp>(plan, std::move(predicate));
    }

    bool aggregated = !core.group_by.empty() ||
                      (core.having != nullptr) ||
                      AnySelectAggregate(core);
    AggContext agg;
    if (aggregated) {
      std::vector<ColumnId> group_ids;
      for (const AstExprPtr& g : core.group_by) {
        if (g->kind != AstExprKind::kColumn) {
          return PlanError(g->offset, "[sql-group-by] GROUP BY supports "
                                      "plain column references only");
        }
        const ScopeColumn* c =
            ResolveColumn(scope, g->qualifier, g->name, g->offset);
        if (c == nullptr) return nullptr;
        agg.group_ids.insert(c->id);
        group_ids.push_back(c->id);
      }
      std::vector<AggregateItem> items;
      for (const SelectItem& item : core.items) {
        if (item.star) continue;  // checked during projection binding
        if (!CollectAggregates(*item.expr, scope, &agg, &items)) return nullptr;
      }
      if (core.having != nullptr &&
          !CollectAggregates(*core.having, scope, &agg, &items)) {
        return nullptr;
      }
      plan = std::make_shared<AggregateOp>(plan, std::move(group_ids),
                                           std::move(items));
      if (core.having != nullptr) {
        ExprPtr predicate = BindBool(*core.having, scope, &agg);
        if (predicate == nullptr) return nullptr;
        plan = std::make_shared<FilterOp>(plan, std::move(predicate));
      }
    }

    return BindProjection(core, scope, aggregated ? &agg : nullptr, plan);
  }

  static bool AnySelectAggregate(const SelectCore& core) {
    for (const SelectItem& item : core.items) {
      if (!item.star && HasAggregate(*item.expr)) return true;
    }
    return false;
  }

  PlanPtr BindProjection(const SelectCore& core, const Scope& scope,
                         const AggContext* agg, PlanPtr plan) {
    std::vector<NamedExpr> exprs;
    std::set<ColumnId> used;
    auto emit = [&](ExprPtr bound, std::string name) {
      NamedExpr ne;
      // Plain column references pass their id through so the projection is
      // prunable; computed or repeated outputs mint a fresh id.
      if (bound->kind() == ExprKind::kColumnRef &&
          used.count(bound->column_id()) == 0) {
        ne.id = bound->column_id();
      } else {
        ne.id = ctx_->NextId();
      }
      used.insert(ne.id);
      ne.name = std::move(name);
      ne.expr = std::move(bound);
      exprs.push_back(std::move(ne));
    };
    for (const SelectItem& item : core.items) {
      if (item.star) {
        for (const ScopeColumn& c : scope.columns) {
          if (agg != nullptr && agg->group_ids.count(c.id) == 0) {
            return PlanError(item.offset,
                             "[sql-not-grouped] SELECT * with GROUP BY "
                             "requires every column to be grouped");
          }
          emit(eb::Col(c.id, c.type), c.name);
        }
        continue;
      }
      ExprPtr bound = BindExpr(*item.expr, scope, agg);
      if (bound == nullptr) return nullptr;
      std::string name = item.alias;
      if (name.empty()) {
        name = item.expr->kind == AstExprKind::kColumn
                   ? item.expr->name
                   : "_col" + std::to_string(exprs.size());
      }
      emit(std::move(bound), std::move(name));
    }
    return std::make_shared<ProjectOp>(plan, std::move(exprs));
  }

  // --- UNION ALL / ORDER BY ------------------------------------------------

  PlanPtr BindUnionAll(const Statement& stmt, std::vector<PlanPtr> branches) {
    const Schema& first = branches[0]->schema();
    std::vector<std::vector<ColumnId>> input_columns;
    for (size_t b = 0; b < branches.size(); ++b) {
      const Schema& schema = branches[b]->schema();
      if (schema.num_columns() != first.num_columns()) {
        return PlanError(stmt.selects[b]->offset,
                         "[sql-union-arity] UNION ALL branches have " +
                             std::to_string(first.num_columns()) + " and " +
                             std::to_string(schema.num_columns()) +
                             " columns");
      }
      std::vector<ColumnId> mapping;
      for (size_t i = 0; i < schema.num_columns(); ++i) {
        if (schema.column(i).type != first.column(i).type) {
          return TypeError(stmt.selects[b]->offset,
                           "[sql-union-type] UNION ALL column " +
                               std::to_string(i + 1) + " has type " +
                               DataTypeName(schema.column(i).type) +
                               " but the first branch has " +
                               DataTypeName(first.column(i).type));
        }
        mapping.push_back(schema.column(i).id);
      }
      input_columns.push_back(std::move(mapping));
    }
    std::vector<ColumnInfo> out;
    for (const ColumnInfo& c : first.columns()) {
      out.push_back({ctx_->NextId(), c.name, c.type});
    }
    return std::make_shared<UnionAllOp>(std::move(branches),
                                        Schema(std::move(out)),
                                        std::move(input_columns));
  }

  ColumnId ResolveOrderTarget(const AstExpr& e, const Schema& schema) {
    if (e.kind == AstExprKind::kIntLit) {
      if (e.int_value < 1 ||
          e.int_value > static_cast<int64_t>(schema.num_columns())) {
        PlanError(e.offset, "[sql-order-by] ORDER BY position " +
                                std::to_string(e.int_value) +
                                " is out of range");
        return kInvalidColumnId;
      }
      return schema.column(static_cast<size_t>(e.int_value - 1)).id;
    }
    if (e.kind == AstExprKind::kColumn && e.qualifier.empty()) {
      ColumnId found = kInvalidColumnId;
      for (const ColumnInfo& c : schema.columns()) {
        if (c.name != e.name) continue;
        if (found != kInvalidColumnId) {
          PlanError(e.offset, "[sql-ambiguous-column] ORDER BY column '" +
                                  e.name + "' is ambiguous");
          return kInvalidColumnId;
        }
        found = c.id;
      }
      if (found == kInvalidColumnId) {
        PlanError(e.offset, "[sql-order-by] ORDER BY must name an output "
                            "column; no output named '" + e.name + "'");
      }
      return found;
    }
    PlanError(e.offset, "[sql-order-by] ORDER BY supports output column "
                        "names and 1-based positions only");
    return kInvalidColumnId;
  }

  const Catalog& catalog_;
  PlanContext* ctx_;
  std::vector<SqlDiagnostic>* diag_;
  bool failed_ = false;
};

}  // namespace

PlanPtr Bind(const Statement& stmt, const Catalog& catalog, PlanContext* ctx,
             std::vector<SqlDiagnostic>* diag) {
  Binder binder(catalog, ctx, diag);
  PlanPtr plan = binder.BindStatement(stmt);
  if (!diag->empty()) return nullptr;
  return plan;
}

}  // namespace fusiondb::sql
