#include "sql/lexer.h"

#include <cctype>

namespace fusiondb::sql {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end of input";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kInt: return "integer literal";
    case TokenKind::kFloat: return "decimal literal";
    case TokenKind::kString: return "string literal";
    case TokenKind::kComma: return "','";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'<>'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
  }
  return "token";
}

bool Token::IsKeyword(const char* keyword) const {
  if (kind != TokenKind::kIdent) return false;
  size_t i = 0;
  for (; keyword[i] != '\0'; ++i) {
    if (i >= text.size()) return false;
    if (std::toupper(static_cast<unsigned char>(text[i])) != keyword[i]) {
      return false;
    }
  }
  return i == text.size();
}

std::vector<Token> Lex(const std::string& sql,
                       std::vector<SqlDiagnostic>* diag) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  auto push = [&](TokenKind kind, size_t start, size_t end) {
    tokens.push_back({kind, sql.substr(start, end - start), start});
  };
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {  // line comment
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      push(TokenKind::kIdent, start, i);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i + 1 < n && sql[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      push(is_float ? TokenKind::kFloat : TokenKind::kInt, start, i);
      continue;
    }
    if (c == '\'') {
      std::string contents;
      ++i;
      bool terminated = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // '' escapes a quote
            contents += '\'';
            i += 2;
            continue;
          }
          terminated = true;
          ++i;
          break;
        }
        contents += sql[i++];
      }
      if (!terminated) {
        diag->push_back({StatusCode::kInvalidArgument,
                         "[sql-syntax] unterminated string literal", start});
        break;
      }
      tokens.push_back({TokenKind::kString, std::move(contents), start});
      continue;
    }
    TokenKind kind;
    size_t len = 1;
    switch (c) {
      case ',': kind = TokenKind::kComma; break;
      case '(': kind = TokenKind::kLParen; break;
      case ')': kind = TokenKind::kRParen; break;
      case '.': kind = TokenKind::kDot; break;
      case ';': kind = TokenKind::kSemicolon; break;
      case '*': kind = TokenKind::kStar; break;
      case '+': kind = TokenKind::kPlus; break;
      case '-': kind = TokenKind::kMinus; break;
      case '/': kind = TokenKind::kSlash; break;
      case '=': kind = TokenKind::kEq; break;
      case '<':
        if (i + 1 < n && sql[i + 1] == '>') {
          kind = TokenKind::kNe;
          len = 2;
        } else if (i + 1 < n && sql[i + 1] == '=') {
          kind = TokenKind::kLe;
          len = 2;
        } else {
          kind = TokenKind::kLt;
        }
        break;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          kind = TokenKind::kGe;
          len = 2;
        } else {
          kind = TokenKind::kGt;
        }
        break;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          kind = TokenKind::kNe;
          len = 2;
          break;
        }
        [[fallthrough]];
      default:
        diag->push_back({StatusCode::kInvalidArgument,
                         std::string("[sql-syntax] unexpected character '") +
                             c + "'",
                         start});
        tokens.push_back({TokenKind::kEof, "", start});
        return tokens;
    }
    i += len;
    push(kind, start, start + len);
  }
  tokens.push_back({TokenKind::kEof, "", n});
  return tokens;
}

}  // namespace fusiondb::sql
