// Expression interpretation over chunks. Expressions are bound once against
// an input Schema (resolving ColumnIds to positions), then evaluated
// row-at-a-time across a chunk.
#ifndef FUSIONDB_EXPR_EVALUATOR_H_
#define FUSIONDB_EXPR_EVALUATOR_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"
#include "types/chunk.h"

namespace fusiondb {

/// An expression whose column references are resolved to positions within a
/// specific input schema.
class BoundExpr {
 public:
  DataType type() const { return type_; }

  /// Evaluates against row `row` of `input`.
  Value EvalRow(const Chunk& input, size_t row) const;

  /// Evaluates against a virtual row spanning two chunks: column positions
  /// < `split` read row `la` of `left`, the rest read row `rb` of `right`
  /// at position (index - split). Lets join residual predicates run over
  /// candidate pairs without materializing combined rows.
  Value EvalRowPair(const Chunk& left, size_t la, const Chunk& right,
                    size_t rb, size_t split) const;

  /// Evaluates for all rows, producing a column of this expression's type.
  Column EvalAll(const Chunk& input) const;

  /// Predicate form: a row passes only when the result is TRUE (not NULL).
  std::vector<uint8_t> EvalFilter(const Chunk& input) const;

 private:
  friend Result<BoundExpr> BindExpr(const ExprPtr& expr, const Schema& schema);

  ExprKind kind_ = ExprKind::kLiteral;
  DataType type_ = DataType::kInt64;
  int column_index_ = -1;
  Value literal_;
  CompareOp cmp_ = CompareOp::kEq;
  ArithOp arith_ = ArithOp::kAdd;
  std::vector<BoundExpr> children_;
};

/// Resolves every column reference in `expr` against `schema`. Fails with
/// kPlanError when a referenced column is not in scope — this is the
/// executor's defense against malformed plans.
Result<BoundExpr> BindExpr(const ExprPtr& expr, const Schema& schema);

}  // namespace fusiondb

#endif  // FUSIONDB_EXPR_EVALUATOR_H_
