// Expression evaluation over chunks. Expressions are bound once against an
// input Schema (resolving ColumnIds to positions and specializing each
// compare/arith node to a typed kernel), then evaluated column-at-a-time.
// Predicates evaluate as selection vectors: a filter narrows the set of
// surviving row indexes instead of materializing boolean columns, so AND
// chains short-circuit across the whole chunk and downstream operators only
// touch surviving rows.
//
// The row-at-a-time interpreter (EvalRow / EvalRowPair) remains as the
// reference implementation: join residuals evaluate it over candidate pairs,
// and the differential tests use it as the oracle for the vectorized path.
#ifndef FUSIONDB_EXPR_EVALUATOR_H_
#define FUSIONDB_EXPR_EVALUATOR_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"
#include "types/chunk.h"
#include "types/sel_vector.h"

namespace fusiondb {

/// An expression whose column references are resolved to positions within a
/// specific input schema, and whose compare/arith nodes carry kernels
/// specialized at bind time on operand physical types and shape
/// (column⊕column, column⊕literal).
class BoundExpr {
 public:
  DataType type() const { return type_; }

  /// Evaluates against row `row` of `input`. Reference implementation; the
  /// executor's hot paths use the vectorized entry points below.
  Value EvalRow(const Chunk& input, size_t row) const;

  /// Evaluates against a virtual row spanning two chunks: column positions
  /// < `split` read row `la` of `left`, the rest read row `rb` of `right`
  /// at position (index - split). Lets join residual predicates run over
  /// candidate pairs without materializing combined rows.
  Value EvalRowPair(const Chunk& left, size_t la, const Chunk& right,
                    size_t rb, size_t split) const;

  /// Evaluates for all rows, producing a column of this expression's type.
  Column EvalAll(const Chunk& input) const;

  /// Evaluates only the selected rows, producing a dense column of
  /// sel.size() values (result row i corresponds to input row sel[i]).
  Column EvalSel(const Chunk& input, const SelVector& sel) const;

  /// Predicate form: the indexes of rows where this expression is TRUE
  /// (not NULL, not FALSE), ascending.
  SelVector EvalFilter(const Chunk& input) const;

  /// In-place predicate form: narrows `sel` to the subset of its rows where
  /// this expression is TRUE. Conjunct chains call this in sequence so each
  /// successive predicate only visits survivors.
  void NarrowFilter(const Chunk& input, SelVector* sel) const;

 private:
  friend Result<BoundExpr> BindExpr(const ExprPtr& expr, const Schema& schema);
  struct Kernels;
  friend struct Kernels;

  /// Kernel signatures. A filter kernel narrows a selection in place; a
  /// compute kernel produces a dense column over `sel` (or over every row
  /// when `sel` is null). Chosen once at bind time, so the hot loop runs
  /// without per-row dispatch on expression kind or operand type.
  using FilterFn = void (*)(const BoundExpr&, const Chunk&, SelVector*);
  using ComputeFn = Column (*)(const BoundExpr&, const Chunk&,
                               const SelVector*);

  /// Installs typed kernels for compare/arith nodes whose operands are
  /// column references or literals of kernel-supported physical types.
  void SpecializeKernels();

  Column EvalInternal(const Chunk& input, const SelVector* sel) const;
  void NarrowInternal(const Chunk& input, SelVector* sel) const;

  ExprKind kind_ = ExprKind::kLiteral;
  DataType type_ = DataType::kInt64;
  int column_index_ = -1;
  Value literal_;
  CompareOp cmp_ = CompareOp::kEq;
  ArithOp arith_ = ArithOp::kAdd;
  std::vector<BoundExpr> children_;
  FilterFn filter_fn_ = nullptr;
  ComputeFn compute_fn_ = nullptr;
};

/// Resolves every column reference in `expr` against `schema`. Fails with
/// kPlanError when a referenced column is not in scope — this is the
/// executor's defense against malformed plans.
Result<BoundExpr> BindExpr(const ExprPtr& expr, const Schema& schema);

/// Testing hook: when enabled, EvalAll/EvalSel/EvalFilter/NarrowFilter
/// route through the row-at-a-time interpreter so whole queries can run
/// against the oracle and be compared byte-for-byte with the vectorized
/// engine. Set only while no query is executing.
void SetRowAtATimeEvalForTesting(bool enabled);

}  // namespace fusiondb

#endif  // FUSIONDB_EXPR_EVALUATOR_H_
