#include "expr/column_map.h"

namespace fusiondb {

ExprPtr ApplyMap(const ColumnMap& m, const ExprPtr& expr) {
  if (m.empty()) return expr;
  switch (expr->kind()) {
    case ExprKind::kColumnRef: {
      auto it = m.find(expr->column_id());
      if (it == m.end()) return expr;
      return Expr::MakeColumnRef(it->second, expr->type());
    }
    case ExprKind::kLiteral:
      return expr;
    case ExprKind::kCompare:
    case ExprKind::kArith:
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kNot:
    case ExprKind::kIsNull:
    case ExprKind::kCase:
    case ExprKind::kInList:
      break;  // recurse into children below
  }
  bool changed = false;
  std::vector<ExprPtr> new_children;
  new_children.reserve(expr->children().size());
  for (const ExprPtr& c : expr->children()) {
    ExprPtr nc = ApplyMap(m, c);
    changed |= (nc != c);
    new_children.push_back(std::move(nc));
  }
  if (!changed) return expr;
  switch (expr->kind()) {
    case ExprKind::kCompare:
      return Expr::MakeCompare(expr->compare_op(), new_children[0],
                               new_children[1]);
    case ExprKind::kArith:
      return Expr::MakeArith(expr->arith_op(), new_children[0], new_children[1],
                             expr->type());
    case ExprKind::kAnd:
      return Expr::MakeAnd(std::move(new_children));
    case ExprKind::kOr:
      return Expr::MakeOr(std::move(new_children));
    case ExprKind::kNot:
      return Expr::MakeNot(new_children[0]);
    case ExprKind::kIsNull:
      return Expr::MakeIsNull(new_children[0]);
    case ExprKind::kCase:
      return Expr::MakeCase(std::move(new_children), expr->type());
    case ExprKind::kInList:
      return Expr::MakeInList(std::move(new_children));
    case ExprKind::kColumnRef:
    case ExprKind::kLiteral:
      return expr;  // leaves; handled before recursion
  }
  return expr;
}

ExprPtr SubstituteColumns(const ColumnDefs& defs, const ExprPtr& expr) {
  switch (expr->kind()) {
    case ExprKind::kColumnRef: {
      auto it = defs.find(expr->column_id());
      if (it == defs.end()) return nullptr;
      return it->second;
    }
    case ExprKind::kLiteral:
      return expr;
    case ExprKind::kCompare:
    case ExprKind::kArith:
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kNot:
    case ExprKind::kIsNull:
    case ExprKind::kCase:
    case ExprKind::kInList:
      break;  // recurse into children below
  }
  bool changed = false;
  std::vector<ExprPtr> new_children;
  new_children.reserve(expr->children().size());
  for (const ExprPtr& c : expr->children()) {
    ExprPtr nc = SubstituteColumns(defs, c);
    if (nc == nullptr) return nullptr;
    changed |= (nc != c);
    new_children.push_back(std::move(nc));
  }
  if (!changed) return expr;
  switch (expr->kind()) {
    case ExprKind::kCompare:
      return Expr::MakeCompare(expr->compare_op(), new_children[0],
                               new_children[1]);
    case ExprKind::kArith:
      return Expr::MakeArith(expr->arith_op(), new_children[0], new_children[1],
                             expr->type());
    case ExprKind::kAnd:
      return Expr::MakeAnd(std::move(new_children));
    case ExprKind::kOr:
      return Expr::MakeOr(std::move(new_children));
    case ExprKind::kNot:
      return Expr::MakeNot(new_children[0]);
    case ExprKind::kIsNull:
      return Expr::MakeIsNull(new_children[0]);
    case ExprKind::kCase:
      return Expr::MakeCase(std::move(new_children), expr->type());
    case ExprKind::kInList:
      return Expr::MakeInList(std::move(new_children));
    case ExprKind::kColumnRef:
    case ExprKind::kLiteral:
      return expr;  // leaves; handled before recursion
  }
  return expr;
}

bool MergeMaps(ColumnMap* base, const ColumnMap& extra) {
  for (const auto& [from, to] : extra) {
    auto it = base->find(from);
    if (it != base->end() && it->second != to) return false;
    (*base)[from] = to;
  }
  return true;
}

}  // namespace fusiondb
