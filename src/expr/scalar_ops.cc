#include "expr/scalar_ops.h"

namespace fusiondb {

Value EvalCompareOp(CompareOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null(DataType::kBool);
  int c = l.Compare(r);
  switch (op) {
    case CompareOp::kEq:
      return Value::Bool(c == 0);
    case CompareOp::kNe:
      return Value::Bool(c != 0);
    case CompareOp::kLt:
      return Value::Bool(c < 0);
    case CompareOp::kLe:
      return Value::Bool(c <= 0);
    case CompareOp::kGt:
      return Value::Bool(c > 0);
    case CompareOp::kGe:
      return Value::Bool(c >= 0);
  }
  return Value::Null(DataType::kBool);
}

Value EvalArithOp(ArithOp op, const Value& l, const Value& r,
                  DataType result_type) {
  if (l.is_null() || r.is_null()) return Value::Null(result_type);
  if (result_type == DataType::kFloat64 || op == ArithOp::kDiv) {
    double a = l.AsDouble();
    double b = r.AsDouble();
    switch (op) {
      case ArithOp::kAdd:
        return Value::Float64(a + b);
      case ArithOp::kSub:
        return Value::Float64(a - b);
      case ArithOp::kMul:
        return Value::Float64(a * b);
      case ArithOp::kDiv:
        if (b == 0.0) return Value::Null(DataType::kFloat64);
        return Value::Float64(a / b);
    }
  }
  int64_t a = l.int_value();
  int64_t b = r.int_value();
  switch (op) {
    case ArithOp::kAdd:
      return Value::Int64(a + b);
    case ArithOp::kSub:
      return Value::Int64(a - b);
    case ArithOp::kMul:
      return Value::Int64(a * b);
    case ArithOp::kDiv:
      if (b == 0) return Value::Null(DataType::kInt64);
      return Value::Int64(a / b);
  }
  return Value::Null(result_type);
}

Value EvalAndPair(const Value& l, const Value& r) {
  // Kleene: FALSE dominates, then NULL, then TRUE.
  bool l_false = !l.is_null() && !l.bool_value();
  bool r_false = !r.is_null() && !r.bool_value();
  if (l_false || r_false) return Value::Bool(false);
  if (l.is_null() || r.is_null()) return Value::Null(DataType::kBool);
  return Value::Bool(true);
}

Value EvalOrPair(const Value& l, const Value& r) {
  bool l_true = !l.is_null() && l.bool_value();
  bool r_true = !r.is_null() && r.bool_value();
  if (l_true || r_true) return Value::Bool(true);
  if (l.is_null() || r.is_null()) return Value::Null(DataType::kBool);
  return Value::Bool(false);
}

Value EvalNot(const Value& v) {
  if (v.is_null()) return Value::Null(DataType::kBool);
  return Value::Bool(!v.bool_value());
}

}  // namespace fusiondb
