#include "expr/simplifier.h"

#include <algorithm>
#include <limits>
#include <map>
#include <optional>

#include "expr/scalar_ops.h"

namespace fusiondb {

namespace {

bool IsFalseLiteral(const ExprPtr& e) { return e->IsLiteralBool(false); }

ExprPtr TrueLit() { return Expr::MakeLiteral(Value::Bool(true)); }
ExprPtr FalseLit() { return Expr::MakeLiteral(Value::Bool(false)); }

/// Rebuilds a node with new children (same shape).
ExprPtr Rebuild(const ExprPtr& e, std::vector<ExprPtr> children) {
  switch (e->kind()) {
    case ExprKind::kCompare:
      return Expr::MakeCompare(e->compare_op(), children[0], children[1]);
    case ExprKind::kArith:
      return Expr::MakeArith(e->arith_op(), children[0], children[1], e->type());
    case ExprKind::kAnd:
      return Expr::MakeAnd(std::move(children));
    case ExprKind::kOr:
      return Expr::MakeOr(std::move(children));
    case ExprKind::kNot:
      return Expr::MakeNot(children[0]);
    case ExprKind::kIsNull:
      return Expr::MakeIsNull(children[0]);
    case ExprKind::kCase:
      return Expr::MakeCase(std::move(children), e->type());
    case ExprKind::kInList:
      return Expr::MakeInList(std::move(children));
    case ExprKind::kColumnRef:
    case ExprKind::kLiteral:
      return e;  // leaves have no children to rebuild
  }
  return e;
}

/// Folds a node whose children are all literals, using the scalar kernels.
std::optional<Value> TryFold(const ExprPtr& e) {
  for (const ExprPtr& c : e->children()) {
    if (c->kind() != ExprKind::kLiteral) return std::nullopt;
  }
  switch (e->kind()) {
    case ExprKind::kCompare:
      return EvalCompareOp(e->compare_op(), e->child(0)->literal(),
                           e->child(1)->literal());
    case ExprKind::kArith:
      return EvalArithOp(e->arith_op(), e->child(0)->literal(),
                         e->child(1)->literal(), e->type());
    case ExprKind::kNot:
      return EvalNot(e->child(0)->literal());
    case ExprKind::kIsNull:
      return Value::Bool(e->child(0)->literal().is_null());
    case ExprKind::kColumnRef:
    case ExprKind::kLiteral:
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kCase:
    case ExprKind::kInList:
      return std::nullopt;  // folded elsewhere (or not foldable)
  }
  return std::nullopt;
}

}  // namespace

void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr == nullptr) return;
  if (expr->kind() == ExprKind::kAnd) {
    for (const ExprPtr& c : expr->children()) SplitConjuncts(c, out);
    return;
  }
  if (IsTrueLiteral(expr)) return;
  out->push_back(expr);
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return TrueLit();
  if (conjuncts.size() == 1) return conjuncts[0];
  return Expr::MakeAnd(conjuncts);
}

ExprPtr MakeConjunction(const ExprPtr& a, const ExprPtr& b) {
  std::vector<ExprPtr> parts;
  SplitConjuncts(a, &parts);
  SplitConjuncts(b, &parts);
  return Simplify(CombineConjuncts(parts));
}

ExprPtr Simplify(const ExprPtr& expr) {
  if (expr == nullptr) return expr;
  if (expr->kind() == ExprKind::kColumnRef ||
      expr->kind() == ExprKind::kLiteral) {
    return expr;
  }

  // Simplify children first.
  std::vector<ExprPtr> children;
  children.reserve(expr->children().size());
  bool changed = false;
  for (const ExprPtr& c : expr->children()) {
    ExprPtr sc = Simplify(c);
    changed |= (sc != c);
    children.push_back(std::move(sc));
  }
  ExprPtr node = changed ? Rebuild(expr, children) : expr;

  switch (node->kind()) {
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      bool is_and = node->kind() == ExprKind::kAnd;
      // Flatten nested AND/AND, OR/OR; drop neutral literals; short-circuit
      // dominant literals; dedupe by fingerprint.
      std::vector<ExprPtr> flat;
      std::vector<std::string> seen;
      bool saw_null = false;
      std::vector<const Expr*> stack;
      std::vector<ExprPtr> work(node->children().rbegin(),
                                node->children().rend());
      while (!work.empty()) {
        ExprPtr c = work.back();
        work.pop_back();
        if (c->kind() == node->kind()) {
          for (auto it = c->children().rbegin(); it != c->children().rend();
               ++it) {
            work.push_back(*it);
          }
          continue;
        }
        if (c->IsLiteralNull()) {
          saw_null = true;
          continue;
        }
        if (is_and) {
          if (IsTrueLiteral(c)) continue;
          if (IsFalseLiteral(c)) return FalseLit();
        } else {
          if (IsFalseLiteral(c)) continue;
          if (IsTrueLiteral(c)) return TrueLit();
        }
        std::string fp = ExprFingerprint(c);
        if (std::find(seen.begin(), seen.end(), fp) != seen.end()) continue;
        seen.push_back(std::move(fp));
        flat.push_back(std::move(c));
      }
      (void)stack;
      if (flat.empty()) {
        // All children were neutral literals (or NULL). With a NULL child the
        // result is NULL-or-dominant; conservatively keep a NULL literal,
        // which filters treat as not-TRUE.
        if (saw_null) return Expr::MakeLiteral(Value::Null(DataType::kBool));
        return is_and ? TrueLit() : FalseLit();
      }
      // Absorption: under AND, a disjunction containing another conjunct as
      // one of its branches is implied by it (A AND (A OR B) == A); dually
      // under OR (A OR (A AND B) == A). This is what collapses the mask
      // chains produced by repeated pairwise aggregate fusion, e.g.
      // b1 AND (b1 OR b2) AND (b1 OR b2 OR b3) -> b1.
      {
        ExprKind absorber = is_and ? ExprKind::kOr : ExprKind::kAnd;
        std::vector<std::string> fps;
        fps.reserve(flat.size());
        for (const ExprPtr& c : flat) fps.push_back(ExprFingerprint(c));
        // A branch is implied when each of its pieces (conjuncts under AND,
        // disjuncts under OR) already appears among the *other* top-level
        // terms — so (x>=1 AND x<=20) absorbs ((x>=1 AND x<=20) OR ...)
        // even after the AND was flattened into separate conjuncts.
        auto implied = [&](const ExprPtr& branch, size_t self) {
          std::vector<ExprPtr> pieces;
          if (is_and) {
            SplitConjuncts(branch, &pieces);
          } else if (branch->kind() == ExprKind::kOr) {
            pieces = branch->children();
          } else {
            pieces.push_back(branch);
          }
          if (pieces.empty()) return false;
          for (const ExprPtr& piece : pieces) {
            std::string pfp = ExprFingerprint(piece);
            bool found = false;
            for (size_t j = 0; j < flat.size() && !found; ++j) {
              found = (j != self) && (fps[j] == pfp);
            }
            if (!found) return false;
          }
          return true;
        };
        std::vector<ExprPtr> kept;
        for (size_t i = 0; i < flat.size(); ++i) {
          bool absorbed = false;
          if (flat[i]->kind() == absorber) {
            for (const ExprPtr& branch : flat[i]->children()) {
              if (implied(branch, i)) {
                absorbed = true;
                break;
              }
            }
          }
          if (!absorbed) kept.push_back(flat[i]);
        }
        flat = std::move(kept);
      }
      if (flat.size() == 1 && !saw_null) return flat[0];
      if (saw_null) {
        flat.push_back(Expr::MakeLiteral(Value::Null(DataType::kBool)));
      }
      // Idempotence: reuse the node when flattening changed nothing.
      if (flat.size() == node->children().size()) {
        bool same = true;
        for (size_t i = 0; i < flat.size(); ++i) {
          same &= (flat[i] == node->child(i));
        }
        if (same) return node;
      }
      return is_and ? Expr::MakeAnd(std::move(flat))
                    : Expr::MakeOr(std::move(flat));
    }
    case ExprKind::kNot: {
      const ExprPtr& c = node->child(0);
      if (IsTrueLiteral(c)) return FalseLit();
      if (IsFalseLiteral(c)) return TrueLit();
      if (c->kind() == ExprKind::kNot) return c->child(0);
      if (auto v = TryFold(node)) return Expr::MakeLiteral(*v);
      return node;
    }
    case ExprKind::kCase: {
      // Drop WHEN FALSE arms; collapse to THEN when the first arm is TRUE.
      const auto& cs = node->children();
      std::vector<ExprPtr> arms;
      size_t n = cs.size();
      for (size_t i = 0; i + 1 < n; i += 2) {
        if (IsFalseLiteral(cs[i]) || cs[i]->IsLiteralNull()) continue;
        if (IsTrueLiteral(cs[i]) && arms.empty()) return cs[i + 1];
        arms.push_back(cs[i]);
        arms.push_back(cs[i + 1]);
      }
      if (arms.empty()) return cs[n - 1];
      arms.push_back(cs[n - 1]);
      if (arms.size() == cs.size()) return node;
      return Expr::MakeCase(std::move(arms), node->type());
    }
    case ExprKind::kColumnRef:
    case ExprKind::kLiteral:
    case ExprKind::kCompare:
    case ExprKind::kArith:
    case ExprKind::kIsNull:
    case ExprKind::kInList: {
      if (auto v = TryFold(node)) return Expr::MakeLiteral(*v);
      return node;
    }
  }
  return node;
}

namespace {

/// A closed-ish numeric interval with optional equality pin, per column.
struct Range {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool lo_open = false;
  bool hi_open = false;
  // Pinned string equality (string columns): first value seen.
  bool has_string_eq = false;
  std::string string_eq;
  bool contradiction = false;

  void IntersectLo(double v, bool open) {
    if (v > lo || (v == lo && open && !lo_open)) {
      lo = v;
      lo_open = open;
    }
  }
  void IntersectHi(double v, bool open) {
    if (v < hi || (v == hi && open && !hi_open)) {
      hi = v;
      hi_open = open;
    }
  }
  bool Empty() const {
    if (contradiction) return true;
    if (lo > hi) return true;
    if (lo == hi && (lo_open || hi_open)) return true;
    return false;
  }
};

/// Applies conjunct `e` to per-column ranges when it has the shape
/// (col cmp literal) or (literal cmp col).
void ApplyConjunct(const ExprPtr& e, std::map<ColumnId, Range>* ranges) {
  if (e->kind() != ExprKind::kCompare) return;
  const ExprPtr* col = nullptr;
  const ExprPtr* lit = nullptr;
  CompareOp op = e->compare_op();
  if (e->child(0)->kind() == ExprKind::kColumnRef &&
      e->child(1)->kind() == ExprKind::kLiteral) {
    col = &e->child(0);
    lit = &e->child(1);
  } else if (e->child(1)->kind() == ExprKind::kColumnRef &&
             e->child(0)->kind() == ExprKind::kLiteral) {
    col = &e->child(1);
    lit = &e->child(0);
    // Flip the operator: lit op col  ==  col flipped(op) lit.
    switch (op) {
      case CompareOp::kLt:
        op = CompareOp::kGt;
        break;
      case CompareOp::kLe:
        op = CompareOp::kGe;
        break;
      case CompareOp::kGt:
        op = CompareOp::kLt;
        break;
      case CompareOp::kGe:
        op = CompareOp::kLe;
        break;
      case CompareOp::kEq:
      case CompareOp::kNe:
        break;  // symmetric; no flip needed
    }
  } else {
    return;
  }
  const Value& v = (*lit)->literal();
  if (v.is_null()) {
    // col cmp NULL is never TRUE: whole conjunction is contradictory.
    (*ranges)[(*col)->column_id()].contradiction = true;
    return;
  }
  Range& r = (*ranges)[(*col)->column_id()];
  if (v.type() == DataType::kString) {
    if (op == CompareOp::kEq) {
      if (r.has_string_eq && r.string_eq != v.string_value()) {
        r.contradiction = true;
      } else {
        r.has_string_eq = true;
        r.string_eq = v.string_value();
      }
    }
    return;
  }
  if (v.type() == DataType::kBool) return;
  double d = v.AsDouble();
  switch (op) {
    case CompareOp::kEq:
      r.IntersectLo(d, false);
      r.IntersectHi(d, false);
      break;
    case CompareOp::kLt:
      r.IntersectHi(d, true);
      break;
    case CompareOp::kLe:
      r.IntersectHi(d, false);
      break;
    case CompareOp::kGt:
      r.IntersectLo(d, true);
      break;
    case CompareOp::kGe:
      r.IntersectLo(d, false);
      break;
    case CompareOp::kNe:
      break;
  }
}

}  // namespace

bool IsContradiction(const ExprPtr& raw) {
  ExprPtr expr = Simplify(raw);
  if (expr->IsLiteralBool(false) || expr->IsLiteralNull()) return true;
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(expr, &conjuncts);
  // p AND NOT p.
  std::vector<std::string> positive, negative;
  for (const ExprPtr& c : conjuncts) {
    if (c->kind() == ExprKind::kNot) {
      negative.push_back(ExprFingerprint(c->child(0)));
    } else {
      positive.push_back(ExprFingerprint(c));
    }
  }
  for (const std::string& p : positive) {
    if (std::find(negative.begin(), negative.end(), p) != negative.end()) {
      return true;
    }
  }
  // Per-column range analysis.
  std::map<ColumnId, Range> ranges;
  for (const ExprPtr& c : conjuncts) ApplyConjunct(c, &ranges);
  for (const auto& [col, r] : ranges) {
    if (r.Empty()) return true;
  }
  return false;
}

}  // namespace fusiondb
