// Terse factory helpers for building expressions in rules, tests and the
// TPC-DS query definitions. All inline; no state.
#ifndef FUSIONDB_EXPR_EXPR_BUILDER_H_
#define FUSIONDB_EXPR_EXPR_BUILDER_H_

#include <string>
#include <utility>
#include <vector>

#include "expr/expr.h"

namespace fusiondb::eb {

inline ExprPtr Col(ColumnId id, DataType type) {
  return Expr::MakeColumnRef(id, type);
}
inline ExprPtr Col(const ColumnInfo& info) {
  return Expr::MakeColumnRef(info.id, info.type);
}
inline ExprPtr Lit(Value v) { return Expr::MakeLiteral(std::move(v)); }
inline ExprPtr Int(int64_t v) { return Lit(Value::Int64(v)); }
inline ExprPtr Dbl(double v) { return Lit(Value::Float64(v)); }
inline ExprPtr Str(std::string v) { return Lit(Value::String(std::move(v))); }
inline ExprPtr True() { return Lit(Value::Bool(true)); }
inline ExprPtr False() { return Lit(Value::Bool(false)); }
inline ExprPtr NullOf(DataType t) { return Lit(Value::Null(t)); }

inline ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return Expr::MakeCompare(CompareOp::kEq, std::move(a), std::move(b));
}
inline ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return Expr::MakeCompare(CompareOp::kNe, std::move(a), std::move(b));
}
inline ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return Expr::MakeCompare(CompareOp::kLt, std::move(a), std::move(b));
}
inline ExprPtr Le(ExprPtr a, ExprPtr b) {
  return Expr::MakeCompare(CompareOp::kLe, std::move(a), std::move(b));
}
inline ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return Expr::MakeCompare(CompareOp::kGt, std::move(a), std::move(b));
}
inline ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return Expr::MakeCompare(CompareOp::kGe, std::move(a), std::move(b));
}

inline DataType ArithResultType(const ExprPtr& a, const ExprPtr& b) {
  return (a->type() == DataType::kFloat64 || b->type() == DataType::kFloat64)
             ? DataType::kFloat64
             : DataType::kInt64;
}
inline ExprPtr Add(ExprPtr a, ExprPtr b) {
  DataType t = ArithResultType(a, b);
  return Expr::MakeArith(ArithOp::kAdd, std::move(a), std::move(b), t);
}
inline ExprPtr Sub(ExprPtr a, ExprPtr b) {
  DataType t = ArithResultType(a, b);
  return Expr::MakeArith(ArithOp::kSub, std::move(a), std::move(b), t);
}
inline ExprPtr Mul(ExprPtr a, ExprPtr b) {
  DataType t = ArithResultType(a, b);
  return Expr::MakeArith(ArithOp::kMul, std::move(a), std::move(b), t);
}
inline ExprPtr Div(ExprPtr a, ExprPtr b) {
  // SQL-style: division always produces float64 in FusionDB.
  return Expr::MakeArith(ArithOp::kDiv, std::move(a), std::move(b),
                         DataType::kFloat64);
}

inline ExprPtr And(std::vector<ExprPtr> cs) { return Expr::MakeAnd(std::move(cs)); }
inline ExprPtr And(ExprPtr a, ExprPtr b) {
  return Expr::MakeAnd({std::move(a), std::move(b)});
}
inline ExprPtr Or(std::vector<ExprPtr> cs) { return Expr::MakeOr(std::move(cs)); }
inline ExprPtr Or(ExprPtr a, ExprPtr b) {
  return Expr::MakeOr({std::move(a), std::move(b)});
}
inline ExprPtr Not(ExprPtr a) { return Expr::MakeNot(std::move(a)); }
inline ExprPtr IsNull(ExprPtr a) { return Expr::MakeIsNull(std::move(a)); }
inline ExprPtr IsNotNull(ExprPtr a) {
  return Expr::MakeNot(Expr::MakeIsNull(std::move(a)));
}

/// a BETWEEN lo AND hi, inclusive on both ends.
inline ExprPtr Between(ExprPtr a, ExprPtr lo, ExprPtr hi) {
  // Sequence the two uses of `a` explicitly: evaluation order of function
  // arguments is unspecified, so `And(Ge(a, ...), Le(std::move(a), ...))`
  // could move `a` out before Ge copies it.
  ExprPtr lower = Ge(a, std::move(lo));
  ExprPtr upper = Le(std::move(a), std::move(hi));
  return And(std::move(lower), std::move(upper));
}

/// operand IN (items...).
inline ExprPtr In(ExprPtr operand, std::vector<ExprPtr> items) {
  std::vector<ExprPtr> children;
  children.reserve(items.size() + 1);
  children.push_back(std::move(operand));
  for (ExprPtr& i : items) children.push_back(std::move(i));
  return Expr::MakeInList(std::move(children));
}

/// CASE WHEN w THEN t ELSE e END.
inline ExprPtr CaseWhen(ExprPtr w, ExprPtr t, ExprPtr e) {
  DataType type = t->type();
  return Expr::MakeCase({std::move(w), std::move(t), std::move(e)}, type);
}

/// General CASE: pairs of (when, then) plus an else branch.
inline ExprPtr Case(std::vector<std::pair<ExprPtr, ExprPtr>> arms, ExprPtr els) {
  std::vector<ExprPtr> children;
  DataType type = arms.empty() ? els->type() : arms[0].second->type();
  for (auto& [w, t] : arms) {
    children.push_back(std::move(w));
    children.push_back(std::move(t));
  }
  children.push_back(std::move(els));
  return Expr::MakeCase(std::move(children), type);
}

}  // namespace fusiondb::eb

#endif  // FUSIONDB_EXPR_EXPR_BUILDER_H_
