// ColumnMap: the "M" of the paper's Fuse(P1, P2) = (P, M, L, R) — a mapping
// from P2's output columns to columns of the fused plan P. Applying M to an
// expression rewrites its column references (III: "we abuse the notation ...
// and reuse M to map expressions in the natural way").
#ifndef FUSIONDB_EXPR_COLUMN_MAP_H_
#define FUSIONDB_EXPR_COLUMN_MAP_H_

#include <unordered_map>

#include "expr/expr.h"

namespace fusiondb {

using ColumnMap = std::unordered_map<ColumnId, ColumnId>;

/// M(id): mapped id, or `id` itself when unmapped (identity extension).
inline ColumnId ApplyMap(const ColumnMap& m, ColumnId id) {
  auto it = m.find(id);
  return it == m.end() ? id : it->second;
}

/// M(expr): rewrites all column references through the map. Shares subtrees
/// that contain no mapped references.
ExprPtr ApplyMap(const ColumnMap& m, const ExprPtr& expr);

/// Merges `extra` into `base`; duplicate keys must agree (returns false on
/// conflict).
bool MergeMaps(ColumnMap* base, const ColumnMap& extra);

/// The expression-valued generalization of ApplyMap: every column reference
/// is replaced by its definition in `defs`. This is how the pipeline
/// compiler composes a projection into downstream predicates and aggregate
/// arguments, so a filter→project chain evaluates directly against the scan
/// schema with no intermediate chunk (DESIGN.md §13). References absent
/// from `defs` are a composition error: the result is null and the caller
/// must fall back. Shares subtrees that contain no references.
using ColumnDefs = std::unordered_map<ColumnId, ExprPtr>;
ExprPtr SubstituteColumns(const ColumnDefs& defs, const ExprPtr& expr);

}  // namespace fusiondb

#endif  // FUSIONDB_EXPR_COLUMN_MAP_H_
