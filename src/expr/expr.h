// Scalar expression trees. Expressions are immutable and shared; rewrites
// build new nodes. Column references use plan-wide ColumnIds, so the same
// expression object remains valid anywhere those columns are in scope.
#ifndef FUSIONDB_EXPR_EXPR_H_
#define FUSIONDB_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "types/schema.h"
#include "types/value.h"

namespace fusiondb {

enum class ExprKind : uint8_t {
  kColumnRef,  // a column of the input schema
  kLiteral,    // constant Value
  kCompare,    // binary comparison (3-valued logic)
  kArith,      // binary arithmetic
  kAnd,        // n-ary conjunction (Kleene)
  kOr,         // n-ary disjunction (Kleene)
  kNot,
  kIsNull,   // IS NULL (never NULL itself)
  kCase,     // children: [when1, then1, ..., whenN, thenN, else]
  kInList,   // children: [operand, item1, ..., itemN]
};

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv };

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// One expression node. Field validity depends on kind (column_id for
/// kColumnRef, literal for kLiteral, cmp/arith for the binary kinds).
class Expr {
 public:
  Expr(ExprKind kind, DataType type) : kind_(kind), type_(type) {}

  ExprKind kind() const { return kind_; }
  DataType type() const { return type_; }

  ColumnId column_id() const { return column_id_; }
  const Value& literal() const { return literal_; }
  CompareOp compare_op() const { return cmp_; }
  ArithOp arith_op() const { return arith_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  const ExprPtr& child(size_t i) const { return children_[i]; }

  bool IsLiteralBool(bool b) const {
    return kind_ == ExprKind::kLiteral && !literal_.is_null() &&
           literal_.type() == DataType::kBool && literal_.bool_value() == b;
  }
  bool IsLiteralNull() const {
    return kind_ == ExprKind::kLiteral && literal_.is_null();
  }

  /// Human-readable rendering (infix, with column ids).
  std::string ToString() const;

  // --- Node factories (type is computed by the caller / builder). ---
  static ExprPtr MakeColumnRef(ColumnId id, DataType type);
  static ExprPtr MakeLiteral(Value v);
  static ExprPtr MakeCompare(CompareOp op, ExprPtr l, ExprPtr r);
  static ExprPtr MakeArith(ArithOp op, ExprPtr l, ExprPtr r, DataType type);
  static ExprPtr MakeAnd(std::vector<ExprPtr> children);
  static ExprPtr MakeOr(std::vector<ExprPtr> children);
  static ExprPtr MakeNot(ExprPtr child);
  static ExprPtr MakeIsNull(ExprPtr child);
  static ExprPtr MakeCase(std::vector<ExprPtr> children, DataType type);
  static ExprPtr MakeInList(std::vector<ExprPtr> children);

 private:
  ExprKind kind_;
  DataType type_;
  ColumnId column_id_ = kInvalidColumnId;
  Value literal_;
  CompareOp cmp_ = CompareOp::kEq;
  ArithOp arith_ = ArithOp::kAdd;
  std::vector<ExprPtr> children_;
};

/// Canonical string form used for structural equivalence: AND/OR children
/// are sorted, commutative binary operators order their operands
/// canonically. Two expressions with equal fingerprints are equivalent
/// (the converse does not hold in general).
std::string ExprFingerprint(const ExprPtr& expr);

/// Structural equivalence via fingerprints (callers usually Simplify()
/// first for stronger results).
bool ExprEquivalent(const ExprPtr& a, const ExprPtr& b);

/// Adds every ColumnId referenced by `expr` to `out`.
void CollectColumns(const ExprPtr& expr, std::vector<ColumnId>* out);

/// True if expression references no columns at all.
bool IsConstantExpr(const ExprPtr& expr);

}  // namespace fusiondb

#endif  // FUSIONDB_EXPR_EXPR_H_
