// Expression simplification: constant folding, AND/OR flattening and
// deduplication, boolean identities, and a per-column range analysis that
// detects contradictions. The paper relies on simplification twice: to
// collapse `C1 OR M(C2)` when both filters are equivalent (III.B), and to
// detect `L AND R == FALSE` in the UnionAll rule's shortcut (IV.D).
#ifndef FUSIONDB_EXPR_SIMPLIFIER_H_
#define FUSIONDB_EXPR_SIMPLIFIER_H_

#include "expr/expr.h"

namespace fusiondb {

/// Returns a simplified, semantically equivalent expression. Idempotent.
ExprPtr Simplify(const ExprPtr& expr);

/// True when the (already boolean) expression can be proven to never be
/// TRUE for any row. Conservative: false means "unknown".
/// Recognizes: literal FALSE/NULL, conjuncts with empty per-column ranges
/// (e.g. x BETWEEN 1 AND 20 AND x BETWEEN 21 AND 40), conflicting
/// equalities, and p AND NOT p.
bool IsContradiction(const ExprPtr& expr);

/// True when the expression is literally TRUE.
inline bool IsTrueLiteral(const ExprPtr& expr) {
  return expr != nullptr && expr->IsLiteralBool(true);
}

/// Conjunction of `a` and `b` with TRUE absorption and flattening.
ExprPtr MakeConjunction(const ExprPtr& a, const ExprPtr& b);

/// Splits a predicate into its top-level conjuncts.
void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out);

/// Rebuilds a conjunction from conjuncts (TRUE for empty).
ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts);

}  // namespace fusiondb

#endif  // FUSIONDB_EXPR_SIMPLIFIER_H_
