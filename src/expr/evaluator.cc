#include "expr/evaluator.h"

#include "expr/scalar_ops.h"

namespace fusiondb {

Result<BoundExpr> BindExpr(const ExprPtr& expr, const Schema& schema) {
  BoundExpr b;
  b.kind_ = expr->kind();
  b.type_ = expr->type();
  if (expr->kind() == ExprKind::kColumnRef) {
    int idx = schema.IndexOf(expr->column_id());
    if (idx < 0) {
      return Status::PlanError("expression references column #" +
                               std::to_string(expr->column_id()) +
                               " not present in input schema " +
                               schema.ToString());
    }
    b.column_index_ = idx;
    return b;
  }
  if (expr->kind() == ExprKind::kLiteral) {
    b.literal_ = expr->literal();
    return b;
  }
  b.cmp_ = expr->compare_op();
  b.arith_ = expr->arith_op();
  b.children_.reserve(expr->children().size());
  for (const ExprPtr& c : expr->children()) {
    FUSIONDB_ASSIGN_OR_RETURN(BoundExpr bc, BindExpr(c, schema));
    b.children_.push_back(std::move(bc));
  }
  return b;
}

Value BoundExpr::EvalRow(const Chunk& input, size_t row) const {
  switch (kind_) {
    case ExprKind::kColumnRef:
      return input.columns[column_index_].GetValue(row);
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kCompare:
      return EvalCompareOp(cmp_, children_[0].EvalRow(input, row),
                           children_[1].EvalRow(input, row));
    case ExprKind::kArith:
      return EvalArithOp(arith_, children_[0].EvalRow(input, row),
                         children_[1].EvalRow(input, row), type_);
    case ExprKind::kAnd: {
      // Short-circuit on FALSE; track NULL.
      bool saw_null = false;
      for (const BoundExpr& c : children_) {
        Value v = c.EvalRow(input, row);
        if (v.is_null()) {
          saw_null = true;
        } else if (!v.bool_value()) {
          return Value::Bool(false);
        }
      }
      return saw_null ? Value::Null(DataType::kBool) : Value::Bool(true);
    }
    case ExprKind::kOr: {
      bool saw_null = false;
      for (const BoundExpr& c : children_) {
        Value v = c.EvalRow(input, row);
        if (v.is_null()) {
          saw_null = true;
        } else if (v.bool_value()) {
          return Value::Bool(true);
        }
      }
      return saw_null ? Value::Null(DataType::kBool) : Value::Bool(false);
    }
    case ExprKind::kNot:
      return EvalNot(children_[0].EvalRow(input, row));
    case ExprKind::kIsNull:
      return Value::Bool(children_[0].EvalRow(input, row).is_null());
    case ExprKind::kCase: {
      size_t n = children_.size();
      for (size_t i = 0; i + 1 < n; i += 2) {
        Value w = children_[i].EvalRow(input, row);
        if (!w.is_null() && w.bool_value()) {
          return children_[i + 1].EvalRow(input, row);
        }
      }
      return children_[n - 1].EvalRow(input, row);
    }
    case ExprKind::kInList: {
      Value operand = children_[0].EvalRow(input, row);
      if (operand.is_null()) return Value::Null(DataType::kBool);
      bool saw_null = false;
      for (size_t i = 1; i < children_.size(); ++i) {
        Value item = children_[i].EvalRow(input, row);
        if (item.is_null()) {
          saw_null = true;
        } else if (operand.Compare(item) == 0) {
          return Value::Bool(true);
        }
      }
      return saw_null ? Value::Null(DataType::kBool) : Value::Bool(false);
    }
  }
  return Value::Null(type_);
}

Value BoundExpr::EvalRowPair(const Chunk& left, size_t la, const Chunk& right,
                             size_t rb, size_t split) const {
  switch (kind_) {
    case ExprKind::kColumnRef: {
      size_t idx = static_cast<size_t>(column_index_);
      if (idx < split) return left.columns[idx].GetValue(la);
      return right.columns[idx - split].GetValue(rb);
    }
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kCompare:
      return EvalCompareOp(cmp_,
                           children_[0].EvalRowPair(left, la, right, rb, split),
                           children_[1].EvalRowPair(left, la, right, rb, split));
    case ExprKind::kArith:
      return EvalArithOp(arith_,
                         children_[0].EvalRowPair(left, la, right, rb, split),
                         children_[1].EvalRowPair(left, la, right, rb, split),
                         type_);
    case ExprKind::kAnd: {
      bool saw_null = false;
      for (const BoundExpr& c : children_) {
        Value v = c.EvalRowPair(left, la, right, rb, split);
        if (v.is_null()) {
          saw_null = true;
        } else if (!v.bool_value()) {
          return Value::Bool(false);
        }
      }
      return saw_null ? Value::Null(DataType::kBool) : Value::Bool(true);
    }
    case ExprKind::kOr: {
      bool saw_null = false;
      for (const BoundExpr& c : children_) {
        Value v = c.EvalRowPair(left, la, right, rb, split);
        if (v.is_null()) {
          saw_null = true;
        } else if (v.bool_value()) {
          return Value::Bool(true);
        }
      }
      return saw_null ? Value::Null(DataType::kBool) : Value::Bool(false);
    }
    case ExprKind::kNot:
      return EvalNot(children_[0].EvalRowPair(left, la, right, rb, split));
    case ExprKind::kIsNull:
      return Value::Bool(
          children_[0].EvalRowPair(left, la, right, rb, split).is_null());
    case ExprKind::kCase: {
      size_t n = children_.size();
      for (size_t i = 0; i + 1 < n; i += 2) {
        Value w = children_[i].EvalRowPair(left, la, right, rb, split);
        if (!w.is_null() && w.bool_value()) {
          return children_[i + 1].EvalRowPair(left, la, right, rb, split);
        }
      }
      return children_[n - 1].EvalRowPair(left, la, right, rb, split);
    }
    case ExprKind::kInList: {
      Value operand = children_[0].EvalRowPair(left, la, right, rb, split);
      if (operand.is_null()) return Value::Null(DataType::kBool);
      bool saw_null = false;
      for (size_t i = 1; i < children_.size(); ++i) {
        Value item = children_[i].EvalRowPair(left, la, right, rb, split);
        if (item.is_null()) {
          saw_null = true;
        } else if (operand.Compare(item) == 0) {
          return Value::Bool(true);
        }
      }
      return saw_null ? Value::Null(DataType::kBool) : Value::Bool(false);
    }
  }
  return Value::Null(type_);
}

namespace {

// --- Vectorized kernels -----------------------------------------------------
// Expressions are evaluated column-at-a-time: each node runs one tight loop
// over its children's result columns, so per-row interpretation overhead
// (virtual recursion, Value boxing) is paid once per node per chunk rather
// than once per node per row.

Column BroadcastLiteral(const Value& v, DataType type, size_t n) {
  Column out(type);
  out.Reserve(n);
  for (size_t r = 0; r < n; ++r) out.AppendValue(v);
  return out;
}

Column CompareColumns(CompareOp op, const Column& l, const Column& r) {
  size_t n = l.size();
  Column out(DataType::kBool);
  out.Reserve(n);
  bool both_int = PhysicalTypeOf(l.type()) == PhysicalType::kInt &&
                  PhysicalTypeOf(r.type()) == PhysicalType::kInt;
  bool both_string = l.type() == DataType::kString &&
                     r.type() == DataType::kString;
  bool numeric = IsNumeric(l.type()) && IsNumeric(r.type());
  auto emit = [&](int c) {
    switch (op) {
      case CompareOp::kEq:
        out.AppendBool(c == 0);
        break;
      case CompareOp::kNe:
        out.AppendBool(c != 0);
        break;
      case CompareOp::kLt:
        out.AppendBool(c < 0);
        break;
      case CompareOp::kLe:
        out.AppendBool(c <= 0);
        break;
      case CompareOp::kGt:
        out.AppendBool(c > 0);
        break;
      case CompareOp::kGe:
        out.AppendBool(c >= 0);
        break;
    }
  };
  for (size_t i = 0; i < n; ++i) {
    if (l.IsNull(i) || r.IsNull(i)) {
      out.AppendNull();
      continue;
    }
    if (both_int) {
      int64_t a = l.IntAt(i);
      int64_t b = r.IntAt(i);
      emit(a < b ? -1 : (a > b ? 1 : 0));
    } else if (numeric) {
      double a = l.NumericAt(i);
      double b = r.NumericAt(i);
      emit(a < b ? -1 : (a > b ? 1 : 0));
    } else if (both_string) {
      int c = l.StringAt(i).compare(r.StringAt(i));
      emit(c < 0 ? -1 : (c > 0 ? 1 : 0));
    } else {
      emit(l.GetValue(i).Compare(r.GetValue(i)));
    }
  }
  return out;
}

Column ArithColumns(ArithOp op, DataType result_type, const Column& l,
                    const Column& r) {
  size_t n = l.size();
  Column out(result_type);
  out.Reserve(n);
  bool int_result = PhysicalTypeOf(result_type) == PhysicalType::kInt &&
                    op != ArithOp::kDiv;
  for (size_t i = 0; i < n; ++i) {
    if (l.IsNull(i) || r.IsNull(i)) {
      out.AppendNull();
      continue;
    }
    if (int_result) {
      int64_t a = l.IntAt(i);
      int64_t b = r.IntAt(i);
      switch (op) {
        case ArithOp::kAdd:
          out.AppendInt(a + b);
          break;
        case ArithOp::kSub:
          out.AppendInt(a - b);
          break;
        case ArithOp::kMul:
          out.AppendInt(a * b);
          break;
        case ArithOp::kDiv:
          if (b == 0) {
            out.AppendNull();
          } else {
            out.AppendInt(a / b);
          }
          break;
      }
    } else {
      double a = l.NumericAt(i);
      double b = r.NumericAt(i);
      switch (op) {
        case ArithOp::kAdd:
          out.AppendDouble(a + b);
          break;
        case ArithOp::kSub:
          out.AppendDouble(a - b);
          break;
        case ArithOp::kMul:
          out.AppendDouble(a * b);
          break;
        case ArithOp::kDiv:
          if (b == 0.0) {
            out.AppendNull();
          } else {
            out.AppendDouble(a / b);
          }
          break;
      }
    }
  }
  return out;
}

}  // namespace

Column BoundExpr::EvalAll(const Chunk& input) const {
  size_t n = input.num_rows();
  switch (kind_) {
    case ExprKind::kColumnRef:
      return input.columns[column_index_];
    case ExprKind::kLiteral:
      return BroadcastLiteral(literal_, type_, n);
    case ExprKind::kCompare: {
      Column l = children_[0].EvalAll(input);
      Column r = children_[1].EvalAll(input);
      return CompareColumns(cmp_, l, r);
    }
    case ExprKind::kArith: {
      Column l = children_[0].EvalAll(input);
      Column r = children_[1].EvalAll(input);
      return ArithColumns(arith_, type_, l, r);
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      // Kleene: AND is FALSE if any child is FALSE, else NULL if any NULL,
      // else TRUE (dual for OR).
      bool is_and = kind_ == ExprKind::kAnd;
      std::vector<uint8_t> dominant(n, 0);
      std::vector<uint8_t> has_null(n, 0);
      for (const BoundExpr& c : children_) {
        Column col = c.EvalAll(input);
        for (size_t i = 0; i < n; ++i) {
          if (col.IsNull(i)) {
            has_null[i] = 1;
          } else if (col.BoolAt(i) != is_and) {
            dominant[i] = 1;
          }
        }
      }
      Column out(DataType::kBool);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (dominant[i]) {
          out.AppendBool(!is_and);
        } else if (has_null[i]) {
          out.AppendNull();
        } else {
          out.AppendBool(is_and);
        }
      }
      return out;
    }
    case ExprKind::kNot: {
      Column c = children_[0].EvalAll(input);
      Column out(DataType::kBool);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (c.IsNull(i)) {
          out.AppendNull();
        } else {
          out.AppendBool(!c.BoolAt(i));
        }
      }
      return out;
    }
    case ExprKind::kIsNull: {
      Column c = children_[0].EvalAll(input);
      Column out(DataType::kBool);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) out.AppendBool(c.IsNull(i));
      return out;
    }
    case ExprKind::kCase: {
      size_t arms = children_.size();
      std::vector<Column> cols;
      cols.reserve(arms);
      for (const BoundExpr& c : children_) cols.push_back(c.EvalAll(input));
      Column out(type_);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        size_t chosen = arms - 1;  // else branch
        for (size_t a = 0; a + 1 < arms; a += 2) {
          if (!cols[a].IsNull(i) && cols[a].BoolAt(i)) {
            chosen = a + 1;
            break;
          }
        }
        out.AppendFrom(cols[chosen], i);
      }
      return out;
    }
    case ExprKind::kInList: {
      std::vector<Column> cols;
      cols.reserve(children_.size());
      for (const BoundExpr& c : children_) cols.push_back(c.EvalAll(input));
      Column out(DataType::kBool);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (cols[0].IsNull(i)) {
          out.AppendNull();
          continue;
        }
        Value operand = cols[0].GetValue(i);
        bool saw_null = false;
        bool found = false;
        for (size_t k = 1; k < cols.size() && !found; ++k) {
          if (cols[k].IsNull(i)) {
            saw_null = true;
          } else if (operand.Compare(cols[k].GetValue(i)) == 0) {
            found = true;
          }
        }
        if (found) {
          out.AppendBool(true);
        } else if (saw_null) {
          out.AppendNull();
        } else {
          out.AppendBool(false);
        }
      }
      return out;
    }
  }
  // Unreachable; keep the row-wise path as a safety net.
  Column out(type_);
  out.Reserve(n);
  for (size_t r = 0; r < n; ++r) out.AppendValue(EvalRow(input, r));
  return out;
}

std::vector<uint8_t> BoundExpr::EvalFilter(const Chunk& input) const {
  Column c = EvalAll(input);
  size_t n = c.size();
  std::vector<uint8_t> keep(n, 0);
  for (size_t r = 0; r < n; ++r) {
    keep[r] = (c.IsValid(r) && c.BoolAt(r)) ? 1 : 0;
  }
  return keep;
}

}  // namespace fusiondb
