#include "expr/evaluator.h"

#include <atomic>
#include <type_traits>
#include <utility>

#include "expr/scalar_ops.h"

namespace fusiondb {

namespace {

// Routes the vectorized entry points through the row-at-a-time interpreter.
// Atomic because parallel drains evaluate masks on worker threads; relaxed is
// enough since tests only flip it between queries.
std::atomic<bool> g_row_at_a_time{false};

bool RowAtATimeEval() {
  return g_row_at_a_time.load(std::memory_order_relaxed);
}

}  // namespace

void SetRowAtATimeEvalForTesting(bool enabled) {
  g_row_at_a_time.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Typed kernels, specialized at bind time.
//
// A compare/arith node whose operands are column references or literals of
// int/double/string physical type gets a kernel instantiated for exactly that
// (operand shape × physical type × operator) combination. The kernel reads
// raw column buffers, so the per-chunk loop carries no Value boxing and no
// per-row dispatch on expression kind or operand type. Nodes outside the
// specialized shapes (nested operands, CASE, IN) fall back to the generic
// column-at-a-time code below, which is semantically identical.
// ---------------------------------------------------------------------------
struct BoundExpr::Kernels {
  // Operand accessors: a uniform IsNull(row) / Get(row) view over either a
  // column's raw buffers or a bound literal.
  struct IntCol {
    const uint8_t* valid;
    const int64_t* vals;
    IntCol(const BoundExpr& e, const Chunk& in)
        : valid(in.columns[e.column_index_].valid_data()),
          vals(in.columns[e.column_index_].ints_data()) {}
    bool IsNull(uint32_t row) const { return valid[row] == 0; }
    int64_t Get(uint32_t row) const { return vals[row]; }
  };
  struct DblCol {
    const uint8_t* valid;
    const double* vals;
    DblCol(const BoundExpr& e, const Chunk& in)
        : valid(in.columns[e.column_index_].valid_data()),
          vals(in.columns[e.column_index_].doubles_data()) {}
    bool IsNull(uint32_t row) const { return valid[row] == 0; }
    double Get(uint32_t row) const { return vals[row]; }
  };
  struct StrCol {
    const uint8_t* valid;
    const std::string* vals;
    StrCol(const BoundExpr& e, const Chunk& in)
        : valid(in.columns[e.column_index_].valid_data()),
          vals(in.columns[e.column_index_].strings_data()) {}
    bool IsNull(uint32_t row) const { return valid[row] == 0; }
    const std::string& Get(uint32_t row) const { return vals[row]; }
  };
  struct IntLit {
    int64_t v;
    IntLit(const BoundExpr& e, const Chunk&) : v(e.literal_.int_value()) {}
    bool IsNull(uint32_t) const { return false; }
    int64_t Get(uint32_t) const { return v; }
  };
  struct DblLit {
    double v;
    DblLit(const BoundExpr& e, const Chunk&) : v(e.literal_.double_value()) {}
    bool IsNull(uint32_t) const { return false; }
    double Get(uint32_t) const { return v; }
  };
  struct StrLit {
    const std::string* v;
    StrLit(const BoundExpr& e, const Chunk&)
        : v(&e.literal_.string_value()) {}
    bool IsNull(uint32_t) const { return false; }
    const std::string& Get(uint32_t) const { return *v; }
  };

  // Comparison functors. Same-type operands compare natively (int64 stays
  // int64, matching the generic CompareColumns path); mixed int/double
  // promotes to double, matching Value::Compare's numeric promotion.
  template <typename A, typename B>
  static bool Less(const A& a, const B& b) {
    if constexpr (std::is_same_v<A, B>) {
      return a < b;
    } else {
      return static_cast<double>(a) < static_cast<double>(b);
    }
  }
  template <typename A, typename B>
  static bool Equal(const A& a, const B& b) {
    if constexpr (std::is_same_v<A, B>) {
      return a == b;
    } else {
      return static_cast<double>(a) == static_cast<double>(b);
    }
  }
  struct OpEq {
    template <typename A, typename B>
    static bool Apply(const A& a, const B& b) {
      return Equal(a, b);
    }
  };
  struct OpNe {
    template <typename A, typename B>
    static bool Apply(const A& a, const B& b) {
      return !Equal(a, b);
    }
  };
  struct OpLt {
    template <typename A, typename B>
    static bool Apply(const A& a, const B& b) {
      return Less(a, b);
    }
  };
  struct OpLe {
    template <typename A, typename B>
    static bool Apply(const A& a, const B& b) {
      return !Less(b, a);
    }
  };
  struct OpGt {
    template <typename A, typename B>
    static bool Apply(const A& a, const B& b) {
      return Less(b, a);
    }
  };
  struct OpGe {
    template <typename A, typename B>
    static bool Apply(const A& a, const B& b) {
      return !Less(a, b);
    }
  };

  // Arithmetic functors; operands arrive pre-promoted to a common type.
  struct ArAdd {
    static constexpr bool kIsDiv = false;
    template <typename T>
    static T Apply(T a, T b) {
      return a + b;
    }
  };
  struct ArSub {
    static constexpr bool kIsDiv = false;
    template <typename T>
    static T Apply(T a, T b) {
      return a - b;
    }
  };
  struct ArMul {
    static constexpr bool kIsDiv = false;
    template <typename T>
    static T Apply(T a, T b) {
      return a * b;
    }
  };
  struct ArDiv {
    static constexpr bool kIsDiv = true;
    template <typename T>
    static T Apply(T a, T b) {
      return a / b;
    }
  };

  /// Filter kernel: compacts `sel` in place to the rows where the comparison
  /// is TRUE (NULL operands fail). Reads trail writes, so the in-place
  /// compaction is safe.
  template <typename L, typename R, typename Op>
  static void CmpFilter(const BoundExpr& e, const Chunk& in, SelVector* sel) {
    L l(e.children_[0], in);
    R r(e.children_[1], in);
    std::vector<uint32_t>& rows = sel->indexes();
    size_t kept = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      uint32_t row = rows[i];
      if (!l.IsNull(row) && !r.IsNull(row) &&
          Op::Apply(l.Get(row), r.Get(row))) {
        rows[kept++] = row;
      }
    }
    rows.resize(kept);
  }

  /// Compute kernel: a dense bool column over `sel` (or over every row when
  /// `sel` is null), NULL where either operand is NULL.
  template <typename L, typename R, typename Op>
  static Column CmpCompute(const BoundExpr& e, const Chunk& in,
                           const SelVector* sel) {
    L l(e.children_[0], in);
    R r(e.children_[1], in);
    size_t n = sel ? sel->size() : in.num_rows();
    Column out(DataType::kBool);
    out.Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      uint32_t row = sel ? (*sel)[i] : static_cast<uint32_t>(i);
      if (l.IsNull(row) || r.IsNull(row)) {
        out.AppendNull();
      } else {
        out.AppendBool(Op::Apply(l.Get(row), r.Get(row)));
      }
    }
    return out;
  }

  /// Arithmetic compute kernel. INT_RESULT selects the int64 path (both
  /// operands int-physical, op != div); otherwise operands promote to double
  /// and division by zero yields NULL — both matching the generic
  /// ArithColumns path and the row-at-a-time EvalArithOp oracle.
  template <typename L, typename R, typename Op, bool INT_RESULT>
  static Column ArithCompute(const BoundExpr& e, const Chunk& in,
                             const SelVector* sel) {
    L l(e.children_[0], in);
    R r(e.children_[1], in);
    size_t n = sel ? sel->size() : in.num_rows();
    Column out(e.type_);
    out.Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      uint32_t row = sel ? (*sel)[i] : static_cast<uint32_t>(i);
      if (l.IsNull(row) || r.IsNull(row)) {
        out.AppendNull();
        continue;
      }
      if constexpr (INT_RESULT) {
        int64_t a = l.Get(row);
        int64_t b = r.Get(row);
        out.AppendInt(Op::template Apply<int64_t>(a, b));
      } else {
        double a = static_cast<double>(l.Get(row));
        double b = static_cast<double>(r.Get(row));
        if constexpr (Op::kIsDiv) {
          if (b == 0.0) {
            out.AppendNull();
            continue;
          }
        }
        out.AppendDouble(Op::template Apply<double>(a, b));
      }
    }
    return out;
  }

  /// Kernels for compare/arith with a NULL literal operand: the result is
  /// NULL for every row, so the filter form keeps nothing.
  static void NullFilter(const BoundExpr&, const Chunk&, SelVector* sel) {
    sel->clear();
  }
  static Column NullCompute(const BoundExpr& e, const Chunk& in,
                            const SelVector* sel) {
    size_t n = sel ? sel->size() : in.num_rows();
    Column out(e.type_);
    out.Reserve(n);
    for (size_t i = 0; i < n; ++i) out.AppendNull();
    return out;
  }

  // --- bind-time dispatch: operator, then left accessor, then right --------

  template <typename L, typename R>
  static void InstallCmp(BoundExpr* e) {
    switch (e->cmp_) {
      case CompareOp::kEq:
        e->filter_fn_ = &CmpFilter<L, R, OpEq>;
        e->compute_fn_ = &CmpCompute<L, R, OpEq>;
        break;
      case CompareOp::kNe:
        e->filter_fn_ = &CmpFilter<L, R, OpNe>;
        e->compute_fn_ = &CmpCompute<L, R, OpNe>;
        break;
      case CompareOp::kLt:
        e->filter_fn_ = &CmpFilter<L, R, OpLt>;
        e->compute_fn_ = &CmpCompute<L, R, OpLt>;
        break;
      case CompareOp::kLe:
        e->filter_fn_ = &CmpFilter<L, R, OpLe>;
        e->compute_fn_ = &CmpCompute<L, R, OpLe>;
        break;
      case CompareOp::kGt:
        e->filter_fn_ = &CmpFilter<L, R, OpGt>;
        e->compute_fn_ = &CmpCompute<L, R, OpGt>;
        break;
      case CompareOp::kGe:
        e->filter_fn_ = &CmpFilter<L, R, OpGe>;
        e->compute_fn_ = &CmpCompute<L, R, OpGe>;
        break;
    }
  }

  static bool IsLit(const BoundExpr& e) {
    return e.kind_ == ExprKind::kLiteral;
  }
  static bool IsDbl(const BoundExpr& e) {
    return PhysicalTypeOf(e.type_) == PhysicalType::kDouble;
  }

  template <typename L>
  static void InstallCmpNumR(BoundExpr* e) {
    const BoundExpr& r = e->children_[1];
    if (IsLit(r)) {
      IsDbl(r) ? InstallCmp<L, DblLit>(e) : InstallCmp<L, IntLit>(e);
    } else {
      IsDbl(r) ? InstallCmp<L, DblCol>(e) : InstallCmp<L, IntCol>(e);
    }
  }
  static void InstallCmpNum(BoundExpr* e) {
    const BoundExpr& l = e->children_[0];
    if (IsLit(l)) {
      IsDbl(l) ? InstallCmpNumR<DblLit>(e) : InstallCmpNumR<IntLit>(e);
    } else {
      IsDbl(l) ? InstallCmpNumR<DblCol>(e) : InstallCmpNumR<IntCol>(e);
    }
  }
  static void InstallCmpStr(BoundExpr* e) {
    const BoundExpr& l = e->children_[0];
    const BoundExpr& r = e->children_[1];
    if (IsLit(l)) {
      IsLit(r) ? InstallCmp<StrLit, StrLit>(e) : InstallCmp<StrLit, StrCol>(e);
    } else {
      IsLit(r) ? InstallCmp<StrCol, StrLit>(e) : InstallCmp<StrCol, StrCol>(e);
    }
  }

  template <typename L, typename R, bool INT_RESULT>
  static ComputeFn ArithFor(ArithOp op) {
    switch (op) {
      case ArithOp::kAdd:
        return &ArithCompute<L, R, ArAdd, INT_RESULT>;
      case ArithOp::kSub:
        return &ArithCompute<L, R, ArSub, INT_RESULT>;
      case ArithOp::kMul:
        return &ArithCompute<L, R, ArMul, INT_RESULT>;
      case ArithOp::kDiv:
        // Division always runs on the double path (NULL on zero divisor).
        if constexpr (INT_RESULT) {
          return nullptr;
        } else {
          return &ArithCompute<L, R, ArDiv, false>;
        }
    }
    return nullptr;
  }

  static ComputeFn PickArithInt(const BoundExpr& e) {
    const BoundExpr& l = e.children_[0];
    const BoundExpr& r = e.children_[1];
    if (IsLit(l)) {
      return IsLit(r) ? ArithFor<IntLit, IntLit, true>(e.arith_)
                      : ArithFor<IntLit, IntCol, true>(e.arith_);
    }
    return IsLit(r) ? ArithFor<IntCol, IntLit, true>(e.arith_)
                    : ArithFor<IntCol, IntCol, true>(e.arith_);
  }
  template <typename L>
  static ComputeFn PickArithDblR(const BoundExpr& e) {
    const BoundExpr& r = e.children_[1];
    if (IsLit(r)) {
      return IsDbl(r) ? ArithFor<L, DblLit, false>(e.arith_)
                      : ArithFor<L, IntLit, false>(e.arith_);
    }
    return IsDbl(r) ? ArithFor<L, DblCol, false>(e.arith_)
                    : ArithFor<L, IntCol, false>(e.arith_);
  }
  static ComputeFn PickArithDbl(const BoundExpr& e) {
    const BoundExpr& l = e.children_[0];
    if (IsLit(l)) {
      return IsDbl(l) ? PickArithDblR<DblLit>(e) : PickArithDblR<IntLit>(e);
    }
    return IsDbl(l) ? PickArithDblR<DblCol>(e) : PickArithDblR<IntCol>(e);
  }
};

void BoundExpr::SpecializeKernels() {
  if (kind_ != ExprKind::kCompare && kind_ != ExprKind::kArith) return;
  const BoundExpr& l = children_[0];
  const BoundExpr& r = children_[1];
  auto is_leaf = [](const BoundExpr& c) {
    return c.kind_ == ExprKind::kColumnRef || c.kind_ == ExprKind::kLiteral;
  };
  if (!is_leaf(l) || !is_leaf(r)) return;
  if ((l.kind_ == ExprKind::kLiteral && l.literal_.is_null()) ||
      (r.kind_ == ExprKind::kLiteral && r.literal_.is_null())) {
    compute_fn_ = &Kernels::NullCompute;
    if (kind_ == ExprKind::kCompare) filter_fn_ = &Kernels::NullFilter;
    return;
  }
  PhysicalType lp = PhysicalTypeOf(l.type_);
  PhysicalType rp = PhysicalTypeOf(r.type_);
  if (kind_ == ExprKind::kCompare) {
    // Mirror the generic comparator's type classes exactly: both int-physical
    // (bool/int64/date) compares as int64, mixed numeric promotes to double,
    // strings compare lexicographically. Anything else (e.g. date vs double)
    // stays on the generic Value::Compare fallback.
    bool both_int = lp == PhysicalType::kInt && rp == PhysicalType::kInt;
    bool both_numeric = IsNumeric(l.type_) && IsNumeric(r.type_);
    if (both_int || both_numeric) {
      Kernels::InstallCmpNum(this);
    } else if (l.type_ == DataType::kString && r.type_ == DataType::kString) {
      Kernels::InstallCmpStr(this);
    }
    return;
  }
  // Arith.
  if (lp == PhysicalType::kString || rp == PhysicalType::kString) return;
  bool int_result =
      PhysicalTypeOf(type_) == PhysicalType::kInt && arith_ != ArithOp::kDiv;
  if (int_result) {
    if (lp == PhysicalType::kInt && rp == PhysicalType::kInt) {
      compute_fn_ = Kernels::PickArithInt(*this);
    }
  } else {
    compute_fn_ = Kernels::PickArithDbl(*this);
  }
}

Result<BoundExpr> BindExpr(const ExprPtr& expr, const Schema& schema) {
  BoundExpr b;
  b.kind_ = expr->kind();
  b.type_ = expr->type();
  if (expr->kind() == ExprKind::kColumnRef) {
    int idx = schema.IndexOf(expr->column_id());
    if (idx < 0) {
      return Status::PlanError("expression references column #" +
                               std::to_string(expr->column_id()) +
                               " not present in input schema " +
                               schema.ToString());
    }
    b.column_index_ = idx;
    return b;
  }
  if (expr->kind() == ExprKind::kLiteral) {
    b.literal_ = expr->literal();
    return b;
  }
  b.cmp_ = expr->compare_op();
  b.arith_ = expr->arith_op();
  b.children_.reserve(expr->children().size());
  for (const ExprPtr& c : expr->children()) {
    FUSIONDB_ASSIGN_OR_RETURN(BoundExpr bc, BindExpr(c, schema));
    b.children_.push_back(std::move(bc));
  }
  b.SpecializeKernels();
  return b;
}

Value BoundExpr::EvalRow(const Chunk& input, size_t row) const {
  switch (kind_) {
    case ExprKind::kColumnRef:
      return input.columns[column_index_].GetValue(row);
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kCompare:
      return EvalCompareOp(cmp_, children_[0].EvalRow(input, row),
                           children_[1].EvalRow(input, row));
    case ExprKind::kArith:
      return EvalArithOp(arith_, children_[0].EvalRow(input, row),
                         children_[1].EvalRow(input, row), type_);
    case ExprKind::kAnd: {
      // Short-circuit on FALSE; track NULL.
      bool saw_null = false;
      for (const BoundExpr& c : children_) {
        Value v = c.EvalRow(input, row);
        if (v.is_null()) {
          saw_null = true;
        } else if (!v.bool_value()) {
          return Value::Bool(false);
        }
      }
      return saw_null ? Value::Null(DataType::kBool) : Value::Bool(true);
    }
    case ExprKind::kOr: {
      bool saw_null = false;
      for (const BoundExpr& c : children_) {
        Value v = c.EvalRow(input, row);
        if (v.is_null()) {
          saw_null = true;
        } else if (v.bool_value()) {
          return Value::Bool(true);
        }
      }
      return saw_null ? Value::Null(DataType::kBool) : Value::Bool(false);
    }
    case ExprKind::kNot:
      return EvalNot(children_[0].EvalRow(input, row));
    case ExprKind::kIsNull:
      return Value::Bool(children_[0].EvalRow(input, row).is_null());
    case ExprKind::kCase: {
      size_t n = children_.size();
      for (size_t i = 0; i + 1 < n; i += 2) {
        Value w = children_[i].EvalRow(input, row);
        if (!w.is_null() && w.bool_value()) {
          return children_[i + 1].EvalRow(input, row);
        }
      }
      return children_[n - 1].EvalRow(input, row);
    }
    case ExprKind::kInList: {
      Value operand = children_[0].EvalRow(input, row);
      if (operand.is_null()) return Value::Null(DataType::kBool);
      bool saw_null = false;
      for (size_t i = 1; i < children_.size(); ++i) {
        Value item = children_[i].EvalRow(input, row);
        if (item.is_null()) {
          saw_null = true;
        } else if (operand.Compare(item) == 0) {
          return Value::Bool(true);
        }
      }
      return saw_null ? Value::Null(DataType::kBool) : Value::Bool(false);
    }
  }
  return Value::Null(type_);
}

Value BoundExpr::EvalRowPair(const Chunk& left, size_t la, const Chunk& right,
                             size_t rb, size_t split) const {
  switch (kind_) {
    case ExprKind::kColumnRef: {
      size_t idx = static_cast<size_t>(column_index_);
      if (idx < split) return left.columns[idx].GetValue(la);
      return right.columns[idx - split].GetValue(rb);
    }
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kCompare:
      return EvalCompareOp(cmp_,
                           children_[0].EvalRowPair(left, la, right, rb, split),
                           children_[1].EvalRowPair(left, la, right, rb, split));
    case ExprKind::kArith:
      return EvalArithOp(arith_,
                         children_[0].EvalRowPair(left, la, right, rb, split),
                         children_[1].EvalRowPair(left, la, right, rb, split),
                         type_);
    case ExprKind::kAnd: {
      bool saw_null = false;
      for (const BoundExpr& c : children_) {
        Value v = c.EvalRowPair(left, la, right, rb, split);
        if (v.is_null()) {
          saw_null = true;
        } else if (!v.bool_value()) {
          return Value::Bool(false);
        }
      }
      return saw_null ? Value::Null(DataType::kBool) : Value::Bool(true);
    }
    case ExprKind::kOr: {
      bool saw_null = false;
      for (const BoundExpr& c : children_) {
        Value v = c.EvalRowPair(left, la, right, rb, split);
        if (v.is_null()) {
          saw_null = true;
        } else if (v.bool_value()) {
          return Value::Bool(true);
        }
      }
      return saw_null ? Value::Null(DataType::kBool) : Value::Bool(false);
    }
    case ExprKind::kNot:
      return EvalNot(children_[0].EvalRowPair(left, la, right, rb, split));
    case ExprKind::kIsNull:
      return Value::Bool(
          children_[0].EvalRowPair(left, la, right, rb, split).is_null());
    case ExprKind::kCase: {
      size_t n = children_.size();
      for (size_t i = 0; i + 1 < n; i += 2) {
        Value w = children_[i].EvalRowPair(left, la, right, rb, split);
        if (!w.is_null() && w.bool_value()) {
          return children_[i + 1].EvalRowPair(left, la, right, rb, split);
        }
      }
      return children_[n - 1].EvalRowPair(left, la, right, rb, split);
    }
    case ExprKind::kInList: {
      Value operand = children_[0].EvalRowPair(left, la, right, rb, split);
      if (operand.is_null()) return Value::Null(DataType::kBool);
      bool saw_null = false;
      for (size_t i = 1; i < children_.size(); ++i) {
        Value item = children_[i].EvalRowPair(left, la, right, rb, split);
        if (item.is_null()) {
          saw_null = true;
        } else if (operand.Compare(item) == 0) {
          return Value::Bool(true);
        }
      }
      return saw_null ? Value::Null(DataType::kBool) : Value::Bool(false);
    }
  }
  return Value::Null(type_);
}

namespace {

// --- Generic column-at-a-time fallbacks -------------------------------------
// Nodes without a bind-time kernel (nested operands, CASE, IN, logic over
// non-predicate context) evaluate here: one loop per node per chunk over the
// children's dense result columns.

Column BroadcastLiteral(const Value& v, DataType type, size_t n) {
  Column out(type);
  out.Reserve(n);
  for (size_t r = 0; r < n; ++r) out.AppendValue(v);
  return out;
}

Column CompareColumns(CompareOp op, const Column& l, const Column& r) {
  size_t n = l.size();
  Column out(DataType::kBool);
  out.Reserve(n);
  bool both_int = PhysicalTypeOf(l.type()) == PhysicalType::kInt &&
                  PhysicalTypeOf(r.type()) == PhysicalType::kInt;
  bool both_string = l.type() == DataType::kString &&
                     r.type() == DataType::kString;
  bool numeric = IsNumeric(l.type()) && IsNumeric(r.type());
  auto emit = [&](int c) {
    switch (op) {
      case CompareOp::kEq:
        out.AppendBool(c == 0);
        break;
      case CompareOp::kNe:
        out.AppendBool(c != 0);
        break;
      case CompareOp::kLt:
        out.AppendBool(c < 0);
        break;
      case CompareOp::kLe:
        out.AppendBool(c <= 0);
        break;
      case CompareOp::kGt:
        out.AppendBool(c > 0);
        break;
      case CompareOp::kGe:
        out.AppendBool(c >= 0);
        break;
    }
  };
  for (size_t i = 0; i < n; ++i) {
    if (l.IsNull(i) || r.IsNull(i)) {
      out.AppendNull();
      continue;
    }
    if (both_int) {
      int64_t a = l.IntAt(i);
      int64_t b = r.IntAt(i);
      emit(a < b ? -1 : (a > b ? 1 : 0));
    } else if (numeric) {
      double a = l.NumericAt(i);
      double b = r.NumericAt(i);
      emit(a < b ? -1 : (a > b ? 1 : 0));
    } else if (both_string) {
      int c = l.StringAt(i).compare(r.StringAt(i));
      emit(c < 0 ? -1 : (c > 0 ? 1 : 0));
    } else {
      emit(l.GetValue(i).Compare(r.GetValue(i)));
    }
  }
  return out;
}

Column ArithColumns(ArithOp op, DataType result_type, const Column& l,
                    const Column& r) {
  size_t n = l.size();
  Column out(result_type);
  out.Reserve(n);
  bool int_result = PhysicalTypeOf(result_type) == PhysicalType::kInt &&
                    op != ArithOp::kDiv;
  for (size_t i = 0; i < n; ++i) {
    if (l.IsNull(i) || r.IsNull(i)) {
      out.AppendNull();
      continue;
    }
    if (int_result) {
      int64_t a = l.IntAt(i);
      int64_t b = r.IntAt(i);
      switch (op) {
        case ArithOp::kAdd:
          out.AppendInt(a + b);
          break;
        case ArithOp::kSub:
          out.AppendInt(a - b);
          break;
        case ArithOp::kMul:
          out.AppendInt(a * b);
          break;
        case ArithOp::kDiv:
          if (b == 0) {
            out.AppendNull();
          } else {
            out.AppendInt(a / b);
          }
          break;
      }
    } else {
      double a = l.NumericAt(i);
      double b = r.NumericAt(i);
      switch (op) {
        case ArithOp::kAdd:
          out.AppendDouble(a + b);
          break;
        case ArithOp::kSub:
          out.AppendDouble(a - b);
          break;
        case ArithOp::kMul:
          out.AppendDouble(a * b);
          break;
        case ArithOp::kDiv:
          if (b == 0.0) {
            out.AppendNull();
          } else {
            out.AppendDouble(a / b);
          }
          break;
      }
    }
  }
  return out;
}

}  // namespace

Column BoundExpr::EvalInternal(const Chunk& input, const SelVector* sel) const {
  if (compute_fn_ != nullptr) return compute_fn_(*this, input, sel);
  size_t n = sel ? sel->size() : input.num_rows();
  switch (kind_) {
    case ExprKind::kColumnRef:
      if (sel) return input.columns[column_index_].Gather(*sel);
      return input.columns[column_index_];
    case ExprKind::kLiteral:
      return BroadcastLiteral(literal_, type_, n);
    case ExprKind::kCompare: {
      Column l = children_[0].EvalInternal(input, sel);
      Column r = children_[1].EvalInternal(input, sel);
      return CompareColumns(cmp_, l, r);
    }
    case ExprKind::kArith: {
      Column l = children_[0].EvalInternal(input, sel);
      Column r = children_[1].EvalInternal(input, sel);
      return ArithColumns(arith_, type_, l, r);
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      // Kleene: AND is FALSE if any child is FALSE, else NULL if any NULL,
      // else TRUE (dual for OR).
      bool is_and = kind_ == ExprKind::kAnd;
      std::vector<uint8_t> dominant(n, 0);
      std::vector<uint8_t> has_null(n, 0);
      for (const BoundExpr& c : children_) {
        Column col = c.EvalInternal(input, sel);
        for (size_t i = 0; i < n; ++i) {
          if (col.IsNull(i)) {
            has_null[i] = 1;
          } else if (col.BoolAt(i) != is_and) {
            dominant[i] = 1;
          }
        }
      }
      Column out(DataType::kBool);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (dominant[i]) {
          out.AppendBool(!is_and);
        } else if (has_null[i]) {
          out.AppendNull();
        } else {
          out.AppendBool(is_and);
        }
      }
      return out;
    }
    case ExprKind::kNot: {
      Column c = children_[0].EvalInternal(input, sel);
      Column out(DataType::kBool);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (c.IsNull(i)) {
          out.AppendNull();
        } else {
          out.AppendBool(!c.BoolAt(i));
        }
      }
      return out;
    }
    case ExprKind::kIsNull: {
      Column c = children_[0].EvalInternal(input, sel);
      Column out(DataType::kBool);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) out.AppendBool(c.IsNull(i));
      return out;
    }
    case ExprKind::kCase: {
      size_t arms = children_.size();
      std::vector<Column> cols;
      cols.reserve(arms);
      for (const BoundExpr& c : children_) {
        cols.push_back(c.EvalInternal(input, sel));
      }
      Column out(type_);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        size_t chosen = arms - 1;  // else branch
        for (size_t a = 0; a + 1 < arms; a += 2) {
          if (!cols[a].IsNull(i) && cols[a].BoolAt(i)) {
            chosen = a + 1;
            break;
          }
        }
        out.AppendFrom(cols[chosen], i);
      }
      return out;
    }
    case ExprKind::kInList: {
      std::vector<Column> cols;
      cols.reserve(children_.size());
      for (const BoundExpr& c : children_) {
        cols.push_back(c.EvalInternal(input, sel));
      }
      Column out(DataType::kBool);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (cols[0].IsNull(i)) {
          out.AppendNull();
          continue;
        }
        Value operand = cols[0].GetValue(i);
        bool saw_null = false;
        bool found = false;
        for (size_t k = 1; k < cols.size() && !found; ++k) {
          if (cols[k].IsNull(i)) {
            saw_null = true;
          } else if (operand.Compare(cols[k].GetValue(i)) == 0) {
            found = true;
          }
        }
        if (found) {
          out.AppendBool(true);
        } else if (saw_null) {
          out.AppendNull();
        } else {
          out.AppendBool(false);
        }
      }
      return out;
    }
  }
  // Unreachable; keep the row-wise path as a safety net.
  Column out(type_);
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.AppendValue(EvalRow(input, sel ? (*sel)[i] : i));
  }
  return out;
}

void BoundExpr::NarrowInternal(const Chunk& input, SelVector* sel) const {
  if (sel->empty()) return;
  if (filter_fn_ != nullptr) {
    filter_fn_(*this, input, sel);
    return;
  }
  switch (kind_) {
    case ExprKind::kAnd:
      // Progressive narrowing: a row survives iff every conjunct is TRUE
      // (Kleene AND is TRUE only when all inputs are TRUE, and the filter
      // drops both FALSE and NULL), so each conjunct only has to visit the
      // previous conjuncts' survivors.
      for (const BoundExpr& c : children_) {
        c.NarrowInternal(input, sel);
        if (sel->empty()) return;
      }
      return;
    case ExprKind::kOr: {
      // A row survives iff some disjunct is TRUE; each disjunct only visits
      // rows no earlier disjunct accepted.
      SelVector remaining = *sel;
      SelVector passed;
      for (const BoundExpr& c : children_) {
        if (remaining.empty()) break;
        SelVector matched = remaining;
        c.NarrowInternal(input, &matched);
        if (matched.empty()) continue;
        remaining.Subtract(matched);
        passed = passed.empty() ? std::move(matched)
                                : SelVector::Union(passed, matched);
      }
      *sel = std::move(passed);
      return;
    }
    case ExprKind::kColumnRef: {
      const Column& c = input.columns[column_index_];
      const uint8_t* valid = c.valid_data();
      const int64_t* vals = c.ints_data();
      std::vector<uint32_t>& rows = sel->indexes();
      size_t kept = 0;
      for (size_t i = 0; i < rows.size(); ++i) {
        uint32_t row = rows[i];
        if (valid[row] != 0 && vals[row] != 0) rows[kept++] = row;
      }
      rows.resize(kept);
      return;
    }
    case ExprKind::kLiteral:
      if (literal_.is_null() || !literal_.bool_value()) sel->clear();
      return;
    default: {
      // Generic predicate: evaluate densely over the selection, keep TRUE.
      Column v = EvalInternal(input, sel);
      std::vector<uint32_t>& rows = sel->indexes();
      size_t kept = 0;
      for (size_t i = 0; i < rows.size(); ++i) {
        if (v.IsValid(i) && v.BoolAt(i)) rows[kept++] = rows[i];
      }
      rows.resize(kept);
      return;
    }
  }
}

Column BoundExpr::EvalAll(const Chunk& input) const {
  if (RowAtATimeEval()) {
    size_t n = input.num_rows();
    Column out(type_);
    out.Reserve(n);
    for (size_t r = 0; r < n; ++r) out.AppendValue(EvalRow(input, r));
    return out;
  }
  return EvalInternal(input, nullptr);
}

Column BoundExpr::EvalSel(const Chunk& input, const SelVector& sel) const {
  if (RowAtATimeEval()) {
    Column out(type_);
    out.Reserve(sel.size());
    for (uint32_t r : sel) out.AppendValue(EvalRow(input, r));
    return out;
  }
  return EvalInternal(input, &sel);
}

SelVector BoundExpr::EvalFilter(const Chunk& input) const {
  SelVector sel = SelVector::Dense(input.num_rows());
  NarrowFilter(input, &sel);
  return sel;
}

void BoundExpr::NarrowFilter(const Chunk& input, SelVector* sel) const {
  if (RowAtATimeEval()) {
    std::vector<uint32_t>& rows = sel->indexes();
    size_t kept = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      Value v = EvalRow(input, rows[i]);
      if (!v.is_null() && v.bool_value()) rows[kept++] = rows[i];
    }
    rows.resize(kept);
    return;
  }
  NarrowInternal(input, sel);
}

}  // namespace fusiondb
