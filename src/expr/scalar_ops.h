// Scalar kernels shared by the interpreter and the constant folder:
// three-valued SQL semantics for comparisons, arithmetic and boolean logic.
#ifndef FUSIONDB_EXPR_SCALAR_OPS_H_
#define FUSIONDB_EXPR_SCALAR_OPS_H_

#include "common/status.h"
#include "expr/expr.h"
#include "types/value.h"

namespace fusiondb {

/// SQL comparison: NULL operand => NULL result.
Value EvalCompareOp(CompareOp op, const Value& l, const Value& r);

/// SQL arithmetic; `result_type` is the node's declared type. Division by
/// zero yields NULL. NULL operand => NULL.
Value EvalArithOp(ArithOp op, const Value& l, const Value& r,
                  DataType result_type);

/// Kleene AND over a pair (used iteratively for n-ary).
Value EvalAndPair(const Value& l, const Value& r);
Value EvalOrPair(const Value& l, const Value& r);
Value EvalNot(const Value& v);

}  // namespace fusiondb

#endif  // FUSIONDB_EXPR_SCALAR_OPS_H_
