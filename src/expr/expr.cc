#include "expr/expr.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace fusiondb {

namespace {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

void Render(const Expr& e, std::ostream& os) {
  switch (e.kind()) {
    case ExprKind::kColumnRef:
      os << "#" << e.column_id();
      break;
    case ExprKind::kLiteral:
      os << e.literal().ToString();
      break;
    case ExprKind::kCompare:
      os << "(" << e.child(0)->ToString() << " "
         << CompareOpName(e.compare_op()) << " " << e.child(1)->ToString()
         << ")";
      break;
    case ExprKind::kArith:
      os << "(" << e.child(0)->ToString() << " " << ArithOpName(e.arith_op())
         << " " << e.child(1)->ToString() << ")";
      break;
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const char* sep = e.kind() == ExprKind::kAnd ? " AND " : " OR ";
      os << "(";
      for (size_t i = 0; i < e.children().size(); ++i) {
        if (i > 0) os << sep;
        os << e.child(i)->ToString();
      }
      os << ")";
      break;
    }
    case ExprKind::kNot:
      os << "NOT " << e.child(0)->ToString();
      break;
    case ExprKind::kIsNull:
      os << "(" << e.child(0)->ToString() << " IS NULL)";
      break;
    case ExprKind::kCase: {
      os << "CASE";
      size_t n = e.children().size();
      for (size_t i = 0; i + 1 < n; i += 2) {
        os << " WHEN " << e.child(i)->ToString() << " THEN "
           << e.child(i + 1)->ToString();
      }
      os << " ELSE " << e.child(n - 1)->ToString() << " END";
      break;
    }
    case ExprKind::kInList: {
      os << e.child(0)->ToString() << " IN (";
      for (size_t i = 1; i < e.children().size(); ++i) {
        if (i > 1) os << ", ";
        os << e.child(i)->ToString();
      }
      os << ")";
      break;
    }
  }
}

}  // namespace

std::string Expr::ToString() const {
  std::ostringstream os;
  Render(*this, os);
  return os.str();
}

ExprPtr Expr::MakeColumnRef(ColumnId id, DataType type) {
  auto e = std::make_shared<Expr>(ExprKind::kColumnRef, type);
  e->column_id_ = id;
  return e;
}

ExprPtr Expr::MakeLiteral(Value v) {
  auto e = std::make_shared<Expr>(ExprKind::kLiteral, v.type());
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::MakeCompare(CompareOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>(ExprKind::kCompare, DataType::kBool);
  e->cmp_ = op;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::MakeArith(ArithOp op, ExprPtr l, ExprPtr r, DataType type) {
  auto e = std::make_shared<Expr>(ExprKind::kArith, type);
  e->arith_ = op;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::MakeAnd(std::vector<ExprPtr> children) {
  FUSIONDB_CHECK(!children.empty(), "AND needs children");
  auto e = std::make_shared<Expr>(ExprKind::kAnd, DataType::kBool);
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::MakeOr(std::vector<ExprPtr> children) {
  FUSIONDB_CHECK(!children.empty(), "OR needs children");
  auto e = std::make_shared<Expr>(ExprKind::kOr, DataType::kBool);
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::MakeNot(ExprPtr child) {
  auto e = std::make_shared<Expr>(ExprKind::kNot, DataType::kBool);
  e->children_ = {std::move(child)};
  return e;
}

ExprPtr Expr::MakeIsNull(ExprPtr child) {
  auto e = std::make_shared<Expr>(ExprKind::kIsNull, DataType::kBool);
  e->children_ = {std::move(child)};
  return e;
}

ExprPtr Expr::MakeCase(std::vector<ExprPtr> children, DataType type) {
  FUSIONDB_CHECK(children.size() >= 3 && children.size() % 2 == 1,
                 "CASE needs when/then pairs plus else");
  auto e = std::make_shared<Expr>(ExprKind::kCase, type);
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::MakeInList(std::vector<ExprPtr> children) {
  FUSIONDB_CHECK(children.size() >= 2, "IN needs operand and items");
  auto e = std::make_shared<Expr>(ExprKind::kInList, DataType::kBool);
  e->children_ = std::move(children);
  return e;
}

namespace {

void Fingerprint(const Expr& e, std::ostream& os) {
  switch (e.kind()) {
    case ExprKind::kColumnRef:
      os << "#" << e.column_id();
      return;
    case ExprKind::kLiteral:
      os << "L:" << DataTypeName(e.literal().type()) << ":"
         << e.literal().ToString();
      return;
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      std::vector<std::string> parts;
      parts.reserve(e.children().size());
      for (const ExprPtr& c : e.children()) parts.push_back(ExprFingerprint(c));
      std::sort(parts.begin(), parts.end());
      parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
      os << (e.kind() == ExprKind::kAnd ? "AND(" : "OR(");
      for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) os << ",";
        os << parts[i];
      }
      os << ")";
      return;
    }
    case ExprKind::kCompare: {
      std::string l = ExprFingerprint(e.child(0));
      std::string r = ExprFingerprint(e.child(1));
      CompareOp op = e.compare_op();
      // Canonicalize: orient so the smaller fingerprint is on the left,
      // flipping the operator accordingly.
      if (r < l) {
        std::swap(l, r);
        switch (op) {
          case CompareOp::kLt:
            op = CompareOp::kGt;
            break;
          case CompareOp::kLe:
            op = CompareOp::kGe;
            break;
          case CompareOp::kGt:
            op = CompareOp::kLt;
            break;
          case CompareOp::kGe:
            op = CompareOp::kLe;
            break;
          case CompareOp::kEq:
          case CompareOp::kNe:
            break;  // =, <> are symmetric
        }
      }
      os << "CMP" << static_cast<int>(op) << "(" << l << "," << r << ")";
      return;
    }
    case ExprKind::kArith: {
      std::string l = ExprFingerprint(e.child(0));
      std::string r = ExprFingerprint(e.child(1));
      ArithOp op = e.arith_op();
      if ((op == ArithOp::kAdd || op == ArithOp::kMul) && r < l) {
        std::swap(l, r);
      }
      os << "ARI" << static_cast<int>(op) << "(" << l << "," << r << ")";
      return;
    }
    case ExprKind::kNot:
      os << "NOT(" << ExprFingerprint(e.child(0)) << ")";
      return;
    case ExprKind::kIsNull:
      os << "ISNULL(" << ExprFingerprint(e.child(0)) << ")";
      return;
    case ExprKind::kCase: {
      os << "CASE(";
      for (size_t i = 0; i < e.children().size(); ++i) {
        if (i > 0) os << ",";
        os << ExprFingerprint(e.child(i));
      }
      os << ")";
      return;
    }
    case ExprKind::kInList: {
      os << "IN(" << ExprFingerprint(e.child(0)) << ";";
      std::vector<std::string> parts;
      for (size_t i = 1; i < e.children().size(); ++i) {
        parts.push_back(ExprFingerprint(e.child(i)));
      }
      std::sort(parts.begin(), parts.end());
      for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) os << ",";
        os << parts[i];
      }
      os << ")";
      return;
    }
  }
}

}  // namespace

std::string ExprFingerprint(const ExprPtr& expr) {
  std::ostringstream os;
  Fingerprint(*expr, os);
  return os.str();
}

bool ExprEquivalent(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  return ExprFingerprint(a) == ExprFingerprint(b);
}

void CollectColumns(const ExprPtr& expr, std::vector<ColumnId>* out) {
  if (expr->kind() == ExprKind::kColumnRef) {
    out->push_back(expr->column_id());
    return;
  }
  for (const ExprPtr& c : expr->children()) CollectColumns(c, out);
}

bool IsConstantExpr(const ExprPtr& expr) {
  std::vector<ColumnId> cols;
  CollectColumns(expr, &cols);
  return cols.empty();
}

}  // namespace fusiondb
