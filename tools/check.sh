#!/usr/bin/env bash
# The full pre-merge gate, in the order a failure is cheapest to hit:
#   1. tier-1: plain build + full ctest (plan verification on by default)
#   2. ThreadSanitizer over the `parallel`-labelled tests
#   3. UndefinedBehaviorSanitizer over the full suite
#   4. tools/lint.sh (banned patterns + clang-tidy when available)
#   5. bench smoke: spool_vs_fusion + adaptive_vs_static at tiny scale,
#      with tools/bench_diff.py gating adaptive against best-static;
#      multi_client_throughput with bench_diff.py gating the sharing
#      path's single-client latency against the solo path
#
# Usage: tools/check.sh [-j N]
set -eu

JOBS="$(nproc 2>/dev/null || echo 2)"
while getopts "j:" opt; do
  case "$opt" in
    j) JOBS="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

echo "== [1/5] tier-1 build + tests =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== [2/5] ThreadSanitizer (parallel tests) =="
cmake -B build-tsan -S . -DFUSIONDB_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$JOBS"
ctest --test-dir build-tsan --output-on-failure -L parallel

echo "== [3/5] UndefinedBehaviorSanitizer (full suite) =="
cmake -B build-ubsan -S . -DFUSIONDB_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j"$JOBS"
ctest --test-dir build-ubsan --output-on-failure -j"$JOBS"

echo "== [4/5] lint =="
tools/lint.sh build

echo "== [5/5] bench smoke + adaptive regression gate =="
# Tiny scale, one repeat: this checks the benches run and that their
# cross-config result-equivalence assertions hold, and gates adaptive
# mode against the best static policy. Latency numbers at this scale are
# noisy, hence the forgiving threshold.
# spool_vs_fusion is smoke-only (one repeat; its assertions are about
# result equivalence). adaptive_vs_static feeds the latency gate, so it
# keeps 3 repeats — its gate reports carry best-of-N, which needs N > 1
# to absorb scheduler noise.
(cd build/bench &&
  FUSIONDB_BENCH_SCALE=0.01 FUSIONDB_BENCH_REPEATS=1 ./spool_vs_fusion &&
  FUSIONDB_BENCH_SCALE=0.01 FUSIONDB_BENCH_REPEATS=3 ./adaptive_vs_static)
python3 tools/bench_diff.py \
  build/bench/BENCH_adaptive_vs_static.static.json \
  build/bench/BENCH_adaptive_vs_static.adaptive.json --threshold 10
# Cross-query fusion server: the sweep's sharing assertions (shared bytes <
# isolated bytes, byte-identical results) run inside the bench; the diff
# gates the session layer's single-client overhead. 5 repeats, best-of-N
# in the gate reports; clients capped so the smoke stays fast.
(cd build/bench &&
  FUSIONDB_BENCH_SCALE=0.01 FUSIONDB_BENCH_REPEATS=5 \
    FUSIONDB_BENCH_MAX_CLIENTS=16 ./multi_client_throughput)
python3 tools/bench_diff.py \
  build/bench/BENCH_multi_client_throughput.solo.json \
  build/bench/BENCH_multi_client_throughput.shared.json --threshold 10

echo "check: all gates passed"
