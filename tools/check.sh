#!/usr/bin/env bash
# The full pre-merge gate, in the order a failure is cheapest to hit:
#   1. tier-1: plain build + full ctest (plan verification on by default)
#   2. ThreadSanitizer over the `parallel`-labelled tests
#   3. UndefinedBehaviorSanitizer over the full suite
#   4. tools/lint.sh (banned patterns + clang-tidy when available)
#
# Usage: tools/check.sh [-j N]
set -eu

JOBS="$(nproc 2>/dev/null || echo 2)"
while getopts "j:" opt; do
  case "$opt" in
    j) JOBS="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

echo "== [1/4] tier-1 build + tests =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== [2/4] ThreadSanitizer (parallel tests) =="
cmake -B build-tsan -S . -DFUSIONDB_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$JOBS"
ctest --test-dir build-tsan --output-on-failure -L parallel

echo "== [3/4] UndefinedBehaviorSanitizer (full suite) =="
cmake -B build-ubsan -S . -DFUSIONDB_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j"$JOBS"
ctest --test-dir build-ubsan --output-on-failure -j"$JOBS"

echo "== [4/4] lint =="
tools/lint.sh build

echo "check: all gates passed"
