#!/usr/bin/env bash
# The full pre-merge gate, in the order a failure is cheapest to hit:
#   1. tier-1: plain build + full ctest (plan verification on by default)
#   2. semantic verification: the TPC-DS-facing tests re-run with
#      FUSIONDB_VERIFY_SEMANTICS=1, so every rule firing across all modes
#      (and the server's cross-plan folds) re-proves its [semantic-*]
#      obligations; then tpcds_overall runs with the tier off and on and
#      tools/bench_diff.py gates the verification overhead at 5%
#   3. ThreadSanitizer over the `parallel`-labelled tests
#   4. UndefinedBehaviorSanitizer over the full suite
#   5. tools/lint.sh (banned patterns + clang-tidy when available)
#   6. bench smoke: spool_vs_fusion + adaptive_vs_static at tiny scale,
#      with tools/bench_diff.py gating adaptive against best-static;
#      multi_client_throughput with bench_diff.py gating the sharing
#      path's single-client latency against the solo path
#   7. service metrics: run_query --server with --metrics/--query-log and
#      assert both outputs are non-empty well-formed JSON (the binary's own
#      exit code already covers the counter-vs-attribution reconciliation);
#      then tpcds_overall with FUSIONDB_BENCH_METRICS off and on, with
#      tools/bench_diff.py gating the always-on recording overhead at 2%
#   8. compiled pipelines: tpcds_overall with FUSIONDB_BENCH_COMPILE off
#      and on (interleaved best-of-3) — compilation must not cost more
#      than 5% on the whole workload — and pipeline_micro off vs on, where
#      the compiled loop must beat the interpreted pull operators by at
#      least 10% summed over the fused-chain shapes (threshold -10)
#   9. SQL front door: run_query --sql positive + malformed-SQL negative
#      (caret diagnostic, exit 2), then the differential fuzz smoke — a
#      second fixed seed beyond the one tier-1 already ran, >= 200
#      generated queries, every one executed under all four optimizer
#      modes and both pipeline backends
#
# Usage: tools/check.sh [-j N]
set -eu

JOBS="$(nproc 2>/dev/null || echo 2)"
while getopts "j:" opt; do
  case "$opt" in
    j) JOBS="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

echo "== [1/9] tier-1 build + tests =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== [2/9] semantic verification (FUSIONDB_VERIFY_SEMANTICS=1) =="
# Every optimizer mode's full TPC-DS sweep, plus the server's cross-plan
# folds, with the semantic tier re-proving each rewrite's obligations.
# plan_props_test covers derivation + the per-tag negative cases;
# tpcds_test/integration_equivalence_test/optimizer_test span all modes;
# server_test exercises the batch-time consumer checks.
FUSIONDB_VERIFY_SEMANTICS=1 ctest --test-dir build --output-on-failure \
  -j"$JOBS" -R '^(plan_props_test|tpcds_test|integration_equivalence_test|optimizer_test|cost_model_test|server_test)$'
# Overhead gate: the tier must cost <= 5% on the whole-workload bench
# (derivation is DAG-memoized; most of the work amortizes). Gated on the
# workload total (--total): per-query medians at smoke scale are sub-ms
# and noisy, but the noise cancels in the sum.
(cd build/bench &&
  FUSIONDB_BENCH_SCALE=0.01 FUSIONDB_BENCH_REPEATS=5 \
    FUSIONDB_VERIFY_SEMANTICS=0 ./tpcds_overall &&
  mv BENCH_tpcds_overall.json BENCH_tpcds_overall.semantics_off.json &&
  FUSIONDB_BENCH_SCALE=0.01 FUSIONDB_BENCH_REPEATS=5 \
    FUSIONDB_VERIFY_SEMANTICS=1 ./tpcds_overall &&
  mv BENCH_tpcds_overall.json BENCH_tpcds_overall.semantics_on.json)
python3 tools/bench_diff.py \
  build/bench/BENCH_tpcds_overall.semantics_off.json \
  build/bench/BENCH_tpcds_overall.semantics_on.json --threshold 5 --total

echo "== [3/9] ThreadSanitizer (parallel tests) =="
cmake -B build-tsan -S . -DFUSIONDB_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$JOBS"
ctest --test-dir build-tsan --output-on-failure -L parallel

echo "== [4/9] UndefinedBehaviorSanitizer (full suite) =="
cmake -B build-ubsan -S . -DFUSIONDB_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j"$JOBS"
ctest --test-dir build-ubsan --output-on-failure -j"$JOBS"

echo "== [5/9] lint =="
tools/lint.sh build

echo "== [6/9] bench smoke + adaptive regression gate =="
# Tiny scale, one repeat: this checks the benches run and that their
# cross-config result-equivalence assertions hold, and gates adaptive
# mode against the best static policy. Latency numbers at this scale are
# noisy, hence the forgiving threshold.
# spool_vs_fusion is smoke-only (one repeat; its assertions are about
# result equivalence). adaptive_vs_static feeds the latency gate, so it
# keeps 3 repeats — its gate reports carry best-of-N, which needs N > 1
# to absorb scheduler noise.
(cd build/bench &&
  FUSIONDB_BENCH_SCALE=0.01 FUSIONDB_BENCH_REPEATS=1 ./spool_vs_fusion &&
  FUSIONDB_BENCH_SCALE=0.01 FUSIONDB_BENCH_REPEATS=3 ./adaptive_vs_static)
python3 tools/bench_diff.py \
  build/bench/BENCH_adaptive_vs_static.static.json \
  build/bench/BENCH_adaptive_vs_static.adaptive.json --threshold 10
# Cross-query fusion server: the sweep's sharing assertions (shared bytes <
# isolated bytes, byte-identical results) run inside the bench; the diff
# gates the session layer's single-client overhead. 5 repeats, best-of-N
# in the gate reports; clients capped so the smoke stays fast.
(cd build/bench &&
  FUSIONDB_BENCH_SCALE=0.01 FUSIONDB_BENCH_REPEATS=5 \
    FUSIONDB_BENCH_MAX_CLIENTS=16 ./multi_client_throughput)
python3 tools/bench_diff.py \
  build/bench/BENCH_multi_client_throughput.solo.json \
  build/bench/BENCH_multi_client_throughput.shared.json --threshold 10

echo "== [7/9] service metrics smoke + overhead gate =="
# Smoke: a server run with the full telemetry surface on. run_query itself
# exits nonzero when the registry's counters fail to reconcile with the
# summed per-session attribution blocks, or when any telemetry write
# fails; the python check asserts the outputs are non-empty, well-formed,
# and carry one query-log event per client.
METRICS_DIR="$(mktemp -d)"
trap 'rm -rf "$METRICS_DIR"' EXIT
build/examples/run_query q65 0.01 --server --clients=8 \
  --metrics="$METRICS_DIR/metrics.json" \
  --query-log="$METRICS_DIR/query_log.jsonl" --slow-ms=10000 >/dev/null
python3 - "$METRICS_DIR" <<'EOF'
import json, sys
d = sys.argv[1]
m = json.load(open(d + "/metrics.json"))
assert m["schema_version"] == 1, m.get("schema_version")
assert m["counters"]["fusiondb_server_sessions_total"] == 8, m["counters"]
assert m["histograms"]["fusiondb_server_queue_wait_us"]["count"] == 8
assert m["histograms"]["fusiondb_server_execute_us"]["count"] == 8
events = [json.loads(l) for l in open(d + "/query_log.jsonl")]
assert len(events) == 8, len(events)
assert all(e["schema_version"] == 1 for e in events)
print("metrics smoke: snapshot + %d query-log events OK" % len(events))
EOF
# Overhead gate: always-on recording must cost <= 2% on the whole-workload
# bench. Same --total rationale as the semantic-verification gate. The two
# configurations are run interleaved (off/on, three rounds) and compared on
# per-query best-of-rounds, because single process-pairs drift by more than
# the threshold on shared hardware (same discipline as the adaptive gate).
(cd build/bench &&
  for round in 1 2 3; do
    FUSIONDB_BENCH_SCALE=0.01 FUSIONDB_BENCH_REPEATS=3 \
      FUSIONDB_BENCH_METRICS=0 ./tpcds_overall &&
    mv BENCH_tpcds_overall.json "BENCH_tpcds_overall.metrics_off.$round.json" &&
    FUSIONDB_BENCH_SCALE=0.01 FUSIONDB_BENCH_REPEATS=3 \
      FUSIONDB_BENCH_METRICS=1 ./tpcds_overall &&
    mv BENCH_tpcds_overall.json "BENCH_tpcds_overall.metrics_on.$round.json" ||
    exit 1
  done)
python3 - build/bench <<'EOF'
import json, sys
d = sys.argv[1]
for config in ("metrics_off", "metrics_on"):
    reports = [json.load(open("%s/BENCH_tpcds_overall.%s.%d.json" % (d, config, i)))
               for i in (1, 2, 3)]
    merged = reports[0]
    for rec, *others in zip(*(r["records"] for r in reports)):
        rec["wall_ms"] = min([rec["wall_ms"]] + [o["wall_ms"] for o in others])
    json.dump(merged, open("%s/BENCH_tpcds_overall.%s.json" % (d, config), "w"))
    print("merged %s: best-of-3 over %d records" % (config, len(merged["records"])))
EOF
python3 tools/bench_diff.py \
  build/bench/BENCH_tpcds_overall.metrics_off.json \
  build/bench/BENCH_tpcds_overall.metrics_on.json --threshold 2 --total

echo "== [8/9] compiled pipelines: overhead + speedup gates =="
# Whole-workload gate: pipeline compilation (on by default) must not cost
# more than 5% summed over the TPC-DS sweep — joins, sorts and windows
# break most chains there, so this bounds the bind-time compilation cost
# plus any loss on short compiled runs. Interleaved best-of-3, same
# drift-cancelling discipline as the metrics gate above.
# Fused-chain gate: on the shapes the compiler exists for (pipeline_micro's
# config=chain entries — multi-boundary scan→filter→project(→aggregate)
# runs) the compiled loop must beat the interpreted pull operators by
# >= 10% summed (threshold -10, --config chain). The config=floor entries
# are near-ties by design and stay informational — their regressions are
# bounded by the whole-workload gate above, and folding their noise into
# the sum would drown the real chain signal at smoke scale. The bench
# itself asserts compiled-vs-interpreted byte-identity per chain before
# timing it. pipeline_micro gets 15 repeats: its per-chain medians at
# repeats=3 swing ~±10% on a loaded runner, enough to flip the gate.
(cd build/bench &&
  for round in 1 2 3; do
    FUSIONDB_BENCH_SCALE=0.01 FUSIONDB_BENCH_REPEATS=3 \
      FUSIONDB_BENCH_COMPILE=0 ./tpcds_overall &&
    mv BENCH_tpcds_overall.json "BENCH_tpcds_overall.compile_off.$round.json" &&
    FUSIONDB_BENCH_SCALE=0.01 FUSIONDB_BENCH_REPEATS=3 \
      FUSIONDB_BENCH_COMPILE=1 ./tpcds_overall &&
    mv BENCH_tpcds_overall.json "BENCH_tpcds_overall.compile_on.$round.json" &&
    FUSIONDB_BENCH_SCALE=0.05 FUSIONDB_BENCH_REPEATS=15 \
      FUSIONDB_BENCH_COMPILE=0 ./pipeline_micro &&
    mv BENCH_pipeline_micro.json "BENCH_pipeline_micro.compile_off.$round.json" &&
    FUSIONDB_BENCH_SCALE=0.05 FUSIONDB_BENCH_REPEATS=15 \
      FUSIONDB_BENCH_COMPILE=1 ./pipeline_micro &&
    mv BENCH_pipeline_micro.json "BENCH_pipeline_micro.compile_on.$round.json" ||
    exit 1
  done)
python3 - build/bench <<'EOF'
import json, sys
d = sys.argv[1]
for bench in ("tpcds_overall", "pipeline_micro"):
    for config in ("compile_off", "compile_on"):
        reports = [json.load(open("%s/BENCH_%s.%s.%d.json" % (d, bench, config, i)))
                   for i in (1, 2, 3)]
        merged = reports[0]
        for rec, *others in zip(*(r["records"] for r in reports)):
            rec["wall_ms"] = min([rec["wall_ms"]] + [o["wall_ms"] for o in others])
        json.dump(merged, open("%s/BENCH_%s.%s.json" % (d, bench, config), "w"))
        print("merged %s %s: best-of-3 over %d records"
              % (bench, config, len(merged["records"])))
EOF
python3 tools/bench_diff.py \
  build/bench/BENCH_tpcds_overall.compile_off.json \
  build/bench/BENCH_tpcds_overall.compile_on.json --threshold 5 --total
python3 tools/bench_diff.py \
  build/bench/BENCH_pipeline_micro.compile_off.json \
  build/bench/BENCH_pipeline_micro.compile_on.json \
  --threshold -10 --total --config chain
# The canonical compiled-configuration report (consumed by the CI bench
# trajectory and uploaded as an artifact).
cp build/bench/BENCH_pipeline_micro.compile_on.json \
  build/bench/BENCH_pipeline_micro.json

echo "== [9/9] SQL front door + differential fuzz smoke =="
# Positive: SQL text through the engine front door matches the named-query
# path's own self-checks (the binary exits nonzero on any mismatch).
build/examples/run_query --sql \
  'SELECT ss_item_sk, SUM(ss_sales_price) AS total FROM store_sales
   WHERE ss_quantity > 5 GROUP BY ss_item_sk ORDER BY total DESC LIMIT 10' \
  0.01 >/dev/null
# Negative: malformed SQL must produce a caret diagnostic and exit 2 —
# not 0 (silently accepted) and not 1 (crashed past the parser).
set +e
build/examples/run_query --sql 'SELECT nope FROM store_sales' 0.01 \
  >/dev/null 2>"$METRICS_DIR/sql_err.txt"
sql_rc=$?
set -e
if [ "$sql_rc" -ne 2 ]; then
  echo "check: malformed SQL exited $sql_rc, want 2" >&2
  cat "$METRICS_DIR/sql_err.txt" >&2
  exit 1
fi
grep -q '\^' "$METRICS_DIR/sql_err.txt" || {
  echo "check: malformed SQL produced no caret snippet:" >&2
  cat "$METRICS_DIR/sql_err.txt" >&2
  exit 1
}
# Fuzz smoke at a second fixed seed (tier-1 ctest already covered the
# default seed 20260807 at 500 queries). Divergences write minimized
# sql_fuzz_repro_*.sql reproducers into build/tests, which CI uploads.
(cd build/tests &&
  FUSIONDB_FUZZ_SEED=31337 FUSIONDB_FUZZ_QUERIES=250 ./sql_fuzz_test)

echo "check: all gates passed"
