#!/usr/bin/env bash
# Static checks beyond the compiler.
#
# Usage: tools/lint.sh [BUILD_DIR]
#
# Two layers:
#   1. Banned-pattern greps (always run; no external tools needed).
#   2. clang-tidy over src/ using BUILD_DIR/compile_commands.json, when
#      clang-tidy is installed (skipped otherwise so the check degrades
#      gracefully on toolchains without it).
#
# Run from the repository root, or via `cmake --build <dir> --target lint`.
set -u

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

failures=0

note_failure() {
  failures=$((failures + 1))
  echo "lint: $1" >&2
}

# --- Layer 1: banned patterns ----------------------------------------------

# Nothing may include generated build output.
if grep -rn '#include "build/' src tests bench examples 2>/dev/null; then
  note_failure 'sources must not include files from build/'
fi

# Raw assert() is compiled out in release builds; library code must report
# through Status (or FUSIONDB_CHECK for true invariants). Tests may assert.
if grep -rn --include='*.cc' --include='*.h' '^[[:space:]]*assert(' \
    src bench examples 2>/dev/null; then
  note_failure 'use Status / FUSIONDB_CHECK instead of raw assert() outside tests'
fi

# The executor has a single timing authority (obs/operator_stats.h's
# NowNanos); scattering std::chrono through operators makes profiling
# overhead unauditable and invites per-row timing.
if grep -rn --include='*.cc' --include='*.h' 'std::chrono' src/exec \
    2>/dev/null; then
  note_failure 'src/exec must use obs/operator_stats.h NowNanos(), not std::chrono'
fi

# The filter/project/aggregate hot path is vectorized; a per-row EvalRow
# call creeping back into these files silently reverts it to boxed-Value
# interpretation. EvalRow stays legal elsewhere (join residuals use
# EvalRowPair; it is also the differential-test oracle).
if grep -n 'EvalRow(' src/exec/simple_exec.cc src/exec/aggregate_exec.cc \
    2>/dev/null; then
  note_failure 'hot-path executors must use EvalAll/EvalFilter, not per-row EvalRow'
fi

# ExecutePlan takes ExecOptions as designated initializers —
# `ExecutePlan(plan, {.parallelism = 4})` — so a reader never has to count
# argument positions. The old positional (chunk_size, parallelism, profile)
# shim is gone; this keeps it from growing back. The heuristic: any second
# argument that is not a braced ExecOptions initializer is positional.
if grep -rn --include='*.cc' --include='*.h' --include='*.cpp' \
    'ExecutePlan([^(){}]*,[[:space:]]*[^{[:space:]]' \
    src tests bench examples 2>/dev/null \
    | grep -v 'ExecOptions\|exec_options'; then
  note_failure 'positional ExecutePlan(plan, chunk, ...) was removed; pass ExecOptions: ExecutePlan(plan, {.chunk_size = ...})'
fi

# Examples are the user-facing front door and must go through
# fusiondb::Engine (Prepare/Optimize/Execute): a raw PlanContext on the
# stack means an example is wiring the layers by hand again. PlanContext*
# parameters (the Engine::PlanBuilder callback shape) are fine — only
# construction is banned.
if grep -rn --include='*.cpp' 'PlanContext[[:space:]]\+[A-Za-z_][A-Za-z0-9_]*\s*[;({]' \
    examples 2>/dev/null; then
  note_failure 'examples/ must not construct PlanContext directly; go through fusiondb::Engine (Prepare/Optimize/Execute)'
fi

# Compiled pipelines are push-based by construction: the whole point of
# src/exec/pipeline.cc is that a morsel flows through filters, projections
# and the aggregate sink in one loop. A pull-style ->Next() call creeping in
# would reintroduce the operator-at-a-time boundary the compiler removes.
if grep -n -- '->Next(' src/exec/pipeline*.cc 2>/dev/null; then
  note_failure 'src/exec/pipeline*.cc must drive MorselSource push-style, never pull via ->Next()'
fi

# Inside a compiled pipeline no intermediate chunk may be materialized
# between the fused operators: filters narrow one SelVector and outputs are
# evaluated straight off the scan morsel (EvalSel). Chunk::Empty() /
# Gather() are the materialization primitives of the interpreted path;
# their appearance in pipeline.cc means a copy came back. (Aggregate
# finalization, which legitimately builds the result chunk, lives in
# agg_build.cc.)
if grep -n 'Chunk::Empty(\|\.Gather(' src/exec/pipeline*.cc 2>/dev/null; then
  note_failure 'src/exec/pipeline*.cc must not materialize intermediate chunks (Chunk::Empty/Gather); compose SelVectors and EvalSel instead'
fi

# The session layer routes every execution — shared or solo — through the
# fan-out executor so the two paths cannot diverge; a direct ExecutePlan
# call in src/server would bypass consumer restoration and the
# shared-vs-isolated accounting.
if grep -rn --include='*.cc' --include='*.h' 'ExecutePlan(' src/server \
    2>/dev/null; then
  note_failure 'src/server must execute through ExecuteFanOut (exec/fanout.h), not ExecutePlan'
fi

# Semantic facts (candidate keys, uniqueness) have one derivation authority:
# analysis/plan_props.h. A rewrite rule reaching for Table::primary_key() or
# growing its own structural key scan re-creates the ad-hoc re-derivation
# JoinOnKeys used to carry (AggregateBelowGuard), which drifted from the
# real property lattice. Rules must consume PropertyDerivation and record
# obligations in the SemanticLedger instead.
if grep -rn --include='*.cc' --include='*.h' \
    'primary_key()\|AggregateBelowGuard' src/optimizer src/fusion \
    2>/dev/null; then
  note_failure 'src/optimizer and src/fusion must derive keys via analysis/plan_props.h (PropertyDerivation), not re-derive them ad hoc'
fi

# --- Layer 2: clang-tidy (optional) ----------------------------------------

if command -v clang-tidy >/dev/null 2>&1; then
  if [ -f "$BUILD_DIR/compile_commands.json" ]; then
    # shellcheck disable=SC2046
    if ! clang-tidy -p "$BUILD_DIR" --quiet $(find src -name '*.cc'); then
      note_failure 'clang-tidy reported findings'
    fi
  else
    echo "lint: skipping clang-tidy ($BUILD_DIR/compile_commands.json not found;" \
         "configure with CMake first)" >&2
  fi
else
  echo "lint: clang-tidy not installed; running grep checks only" >&2
fi

if [ "$failures" -ne 0 ]; then
  echo "lint: FAILED ($failures issue(s))" >&2
  exit 1
fi
echo "lint: OK"
