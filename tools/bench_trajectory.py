#!/usr/bin/env python3
"""Accumulate BENCH_<name>.json reports into per-benchmark time series.

bench_diff.py answers "did this one change regress?"; this tool answers
"how has each benchmark moved across the last N runs?". Every `append`
stores one snapshot of a report into a JSONL trajectory file (one line per
append, newest last); `report` replays the series and prints, for each
(bench, query, config, threads) key, the recorded wall_ms values with the
latest-vs-previous and latest-vs-first deltas.

Usage:
    tools/bench_trajectory.py append BENCH_tpcds_overall.json [...more]
        [--db BENCH_TRAJECTORY.jsonl] [--label "after PR 8"]
    tools/bench_trajectory.py report
        [--db BENCH_TRAJECTORY.jsonl] [--bench tpcds_overall] [--last N]

The trajectory file is append-only JSONL (schema_version stamped per line)
and lives in the working directory by default, so CI can cache or upload it
alongside the BENCH_*.json artifacts it is built from.
"""

import argparse
import datetime
import json
import sys

SCHEMA_VERSION = 1
DEFAULT_DB = "BENCH_TRAJECTORY.jsonl"


def load_report(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_trajectory: cannot read {path}: {e}")
    if "bench" not in report or not report.get("records"):
        sys.exit(f"bench_trajectory: {path} is not a BENCH report "
                 "(missing 'bench' or empty 'records')")
    return report


def cmd_append(args):
    lines = []
    stamp = datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds")
    for path in args.reports:
        report = load_report(path)
        entry = {
            "schema_version": SCHEMA_VERSION,
            "at": stamp,
            "label": args.label,
            "bench": report["bench"],
            "scale": report.get("scale"),
            "records": [
                {
                    "query": r["query"],
                    "config": r.get("config", ""),
                    "threads": r.get("threads", 1),
                    "wall_ms": float(r["wall_ms"]),
                    "bytes_scanned": r.get("bytes_scanned"),
                }
                for r in report["records"]
            ],
        }
        lines.append(json.dumps(entry, separators=(",", ":")))
    try:
        with open(args.db, "a") as f:
            for line in lines:
                f.write(line + "\n")
    except OSError as e:
        sys.exit(f"bench_trajectory: cannot append to {args.db}: {e}")
    print(f"bench_trajectory: appended {len(lines)} report(s) to {args.db}")
    return 0


def load_db(path):
    entries = []
    try:
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except json.JSONDecodeError as e:
                    sys.exit(f"bench_trajectory: {path}:{lineno}: bad JSON: {e}")
    except OSError as e:
        sys.exit(f"bench_trajectory: cannot read {path}: {e}")
    if not entries:
        sys.exit(f"bench_trajectory: {path} is empty — run `append` first")
    return entries


def fmt_key(key):
    _, query, config, threads = key
    out = query
    if config:
        out += f" [{config}]"
    if threads != 1:
        out += f" x{threads}t"
    return out


def cmd_report(args):
    entries = load_db(args.db)
    if args.bench:
        entries = [e for e in entries if e.get("bench") == args.bench]
        if not entries:
            sys.exit(f"bench_trajectory: no entries for bench "
                     f"'{args.bench}' in {args.db}")

    # series[(bench, query, config, threads)] = [wall_ms, ...] oldest first.
    series = {}
    for e in entries:
        for r in e.get("records", []):
            key = (e["bench"], r["query"], r.get("config", ""),
                   r.get("threads", 1))
            series.setdefault(key, []).append(float(r["wall_ms"]))

    benches = sorted({k[0] for k in series})
    status = 0
    for bench in benches:
        keys = sorted(k for k in series if k[0] == bench)
        runs = max(len(series[k]) for k in keys)
        shown = min(runs, args.last) if args.last else runs
        print(f"== {bench} ({runs} run(s), showing last {shown}) ==")
        width = max(len(fmt_key(k)) for k in keys)
        for key in keys:
            vals = series[key]
            tail = vals[-shown:]
            cells = "  ".join(f"{v:>9.4f}" for v in tail)
            deltas = ""
            if len(vals) >= 2:
                prev = vals[-2]
                first = vals[0]
                d_prev = ((vals[-1] - prev) / prev * 100.0) if prev > 0 else 0.0
                d_first = ((vals[-1] - first) / first * 100.0) if first > 0 \
                    else 0.0
                deltas = f"  vs prev {d_prev:+6.1f}%  vs first {d_first:+6.1f}%"
            print(f"  {fmt_key(key):<{width}}  {cells}{deltas}")
        print()
    return status


def main():
    parser = argparse.ArgumentParser(
        description="Per-benchmark wall_ms time series over BENCH reports.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_append = sub.add_parser("append", help="record BENCH report(s)")
    p_append.add_argument("reports", nargs="+",
                          help="BENCH_<name>.json files to record")
    p_append.add_argument("--db", default=DEFAULT_DB)
    p_append.add_argument("--label", default="",
                          help="free-form tag for this run (e.g. a commit)")
    p_append.set_defaults(func=cmd_append)

    p_report = sub.add_parser("report", help="print the recorded series")
    p_report.add_argument("--db", default=DEFAULT_DB)
    p_report.add_argument("--bench", default="",
                          help="restrict to one bench name")
    p_report.add_argument("--last", type=int, default=0,
                          help="show only the last N runs per series")
    p_report.set_defaults(func=cmd_report)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
