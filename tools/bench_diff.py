#!/usr/bin/env python3
"""Compare two BENCH_<name>.json reports and flag wall-clock regressions.

Usage: tools/bench_diff.py BASELINE.json CANDIDATE.json [--threshold PCT]

Records are keyed by (query, config, threads); every benchmark present in
both reports gets a wall_ms delta line. Exits non-zero when any shared
benchmark regresses by more than the threshold (default 10%), so CI can gate
on it:

    ./bench/expr_micro && mv BENCH_expr_micro.json before.json
    # ... apply change, rebuild ...
    ./bench/expr_micro && tools/bench_diff.py before.json BENCH_expr_micro.json

Benchmarks present in only one report are listed but never fail the check
(renames should not mask real regressions elsewhere).

With --total the gate applies to the summed wall_ms over shared benchmarks
instead of per benchmark. Use it for overheads that are amortized across a
whole workload (e.g. the semantic-verification tier): per-query medians at
smoke scale are sub-millisecond and noisy, but the noise cancels in the sum.
Per-benchmark deltas are still printed for diagnosis.

With --config NAME only records whose config field equals NAME are compared.
Use it when one report mixes populations with different expectations — e.g.
pipeline_micro's fused-chain entries (gated for speedup) vs its floor
entries (near-ties by design, informational only).
"""

import argparse
import json
import sys


def load_records(path):
    """Returns {(query, config, threads): wall_ms} for one report."""
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_diff: cannot read {path}: {e}")
    records = {}
    for r in report.get("records", []):
        key = (r["query"], r.get("config", ""), r.get("threads", 1))
        if key in records:
            sys.exit(f"bench_diff: duplicate record {key} in {path}")
        records[key] = float(r["wall_ms"])
    if not records:
        sys.exit(f"bench_diff: {path} has no records")
    return records


def fmt_key(key):
    query, config, threads = key
    out = query
    if config:
        out += f" [{config}]"
    if threads != 1:
        out += f" x{threads}t"
    return out


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_<name>.json reports by wall_ms.")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold in percent (default 10)")
    parser.add_argument("--total", action="store_true",
                        help="gate the summed wall_ms over shared benchmarks "
                             "instead of each benchmark individually")
    parser.add_argument("--config", default=None,
                        help="only compare records with this config field")
    args = parser.parse_args()

    base = load_records(args.baseline)
    cand = load_records(args.candidate)
    if args.config is not None:
        base = {k: v for k, v in base.items() if k[1] == args.config}
        cand = {k: v for k, v in cand.items() if k[1] == args.config}
        if not base or not cand:
            sys.exit(f"bench_diff: no records with config "
                     f"'{args.config}' in both reports")
    shared = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    width = max((len(fmt_key(k)) for k in shared), default=10)
    regressions = []
    print(f"{'benchmark':<{width}}  {'base ms':>10}  {'cand ms':>10}  delta")
    for key in shared:
        b, c = base[key], cand[key]
        pct = (c - b) / b * 100.0 if b > 0 else 0.0
        marker = ""
        if pct > args.threshold and not args.total:
            marker = "  REGRESSION"
            regressions.append((key, pct))
        print(f"{fmt_key(key):<{width}}  {b:>10.4f}  {c:>10.4f}  "
              f"{pct:>+7.1f}%{marker}")

    for key in only_base:
        print(f"{fmt_key(key)}: only in baseline")
    for key in only_cand:
        print(f"{fmt_key(key)}: only in candidate")

    if args.total:
        total_base = sum(base[k] for k in shared)
        total_cand = sum(cand[k] for k in shared)
        pct = ((total_cand - total_base) / total_base * 100.0
               if total_base > 0 else 0.0)
        print(f"\ntotal over {len(shared)} shared benchmark(s): "
              f"{total_base:.4f} ms -> {total_cand:.4f} ms ({pct:+.1f}%)")
        if pct > args.threshold:
            print(f"bench_diff: total regressed more than "
                  f"{args.threshold:g}% (+{pct:.1f}%)", file=sys.stderr)
            return 1
        print(f"bench_diff: OK (total within {args.threshold:g}%)")
        return 0

    if regressions:
        print(f"\nbench_diff: {len(regressions)} benchmark(s) regressed "
              f"more than {args.threshold:g}%:", file=sys.stderr)
        for key, pct in regressions:
            print(f"  {fmt_key(key)}: +{pct:.1f}%", file=sys.stderr)
        return 1
    print(f"\nbench_diff: OK ({len(shared)} shared benchmark(s), "
          f"none regressed more than {args.threshold:g}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
